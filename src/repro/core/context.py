"""The ambient-session mechanism.

A :class:`~repro.core.session.Session` is *activated* for a dynamic scope
(:meth:`Session.activate`); while active, the cross-cutting services that
used to be module globals -- the fusion/retiming memo caches, the compiled
kernel cache -- resolve through the session first and fall back to the
process-wide defaults.  The low-level consumers (:mod:`repro.perf.memo`,
:mod:`repro.codegen.pycompile`, :mod:`repro.resilience.ladder`) import only
this module, which depends on nothing else in :mod:`repro`, so there are no
import cycles.

The scope is a :class:`contextvars.ContextVar`: nested activations restore
correctly and worker threads start *clean* (a fresh thread sees no active
session until it activates one), which is exactly the isolation
``Session.fuse_many`` workers need.

:func:`budget_scope` is the same mechanism for deadlines: one shared
session can compile many programs concurrently, each under its *own*
:class:`~repro.resilience.budget.Budget` (``repro-fuse batch
--timeout-ms``), without mutating the session.  Consumers read
:attr:`Session.effective_budget`, which prefers the context override.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.session import Session
    from repro.resilience.budget import Budget

__all__ = [
    "budget_scope",
    "current_budget_override",
    "current_session",
    "session_scope",
]

_CURRENT: ContextVar[Optional["Session"]] = ContextVar(
    "repro_current_session", default=None
)

_BUDGET: ContextVar[Optional["Budget"]] = ContextVar(
    "repro_budget_override", default=None
)


def current_session() -> Optional["Session"]:
    """The :class:`Session` active in this context, or ``None``."""
    return _CURRENT.get()


@contextmanager
def session_scope(session: "Session") -> Iterator["Session"]:
    """Make ``session`` the ambient session for the block (re-entrant)."""
    token = _CURRENT.set(session)
    try:
        yield session
    finally:
        _CURRENT.reset(token)


def current_budget_override() -> Optional["Budget"]:
    """The per-context :class:`Budget` override, or ``None``."""
    return _BUDGET.get()


@contextmanager
def budget_scope(budget: Optional["Budget"]) -> Iterator[Optional["Budget"]]:
    """Make ``budget`` the context's budget for the block.

    The override wins over the session's own budget wherever
    :attr:`Session.effective_budget` is consulted, and is context-local:
    concurrent batch workers can each run their program under a different
    deadline against one shared session.
    """
    token = _BUDGET.set(budget)
    try:
        yield budget
    finally:
        _BUDGET.reset(token)
