"""The execution-backend registry.

Four interchangeable executors can run a fused program; this module gives
them one name table and one calling convention so every selection site --
``repro-fuse run --backend``, ``repro-fuse bench --backends``,
``SessionOptions.backend`` (and through it the serve workers and
``fuse_many``) -- resolves backends the same way:

========== =========================================================
``interp``   tree-walking interpreter (:func:`repro.codegen.interp.run_fused`,
             serial mode) -- the semantic ground truth
``compiled`` generated Python with per-row numpy slices
             (:func:`repro.codegen.pycompile.compile_fused`)
``numpy``    staged whole-array lowering
             (:func:`repro.codegen.nplower.compile_numpy`)
``parallel`` chunked thread/process execution
             (:class:`repro.perf.parallel.ParallelExecutor`)
========== =========================================================

Every runner takes the same arguments and mutates/returns the given
:class:`~repro.codegen.interp.ArrayStore`; all are bit-identical to
``interp`` (enforced by the callers that verify, and by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.codegen.fused import FusedProgram
    from repro.codegen.interp import ArrayStore
    from repro.vectors import IVec

__all__ = [
    "ExecutionBackend",
    "register",
    "get",
    "backend_names",
    "execute_fused",
]

#: Runner signature:
#: ``(fp, n, m, store, schedule, is_doall, jobs, tile) -> store``.
Runner = Callable[..., "ArrayStore"]


@dataclass(frozen=True)
class ExecutionBackend:
    """One way to execute a fused program over an :class:`ArrayStore`."""

    name: str
    description: str
    runner: Runner


_REGISTRY: Dict[str, ExecutionBackend] = {}


def register(backend: ExecutionBackend) -> ExecutionBackend:
    """Add (or replace) a backend in the registry."""
    _REGISTRY[backend.name] = backend
    return backend


def get(name: str) -> ExecutionBackend:
    """Look a backend up by name; raises ``KeyError`` listing the options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; known: {backend_names()}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_REGISTRY)


def execute_fused(
    name: str,
    fp: "FusedProgram",
    n: int,
    m: int,
    *,
    store: "ArrayStore",
    schedule: Optional["IVec"] = None,
    is_doall: bool = True,
    jobs: Optional[int] = None,
    tile: Optional[int] = None,
) -> "ArrayStore":
    """Run ``fp`` over ``store`` (mutated in place) with the named backend.

    ``schedule``/``is_doall`` come from the fusion result (the hyperplane
    vector when the fusion is not DOALL); ``jobs``/``tile`` only matter to
    the ``parallel`` backend.  ``name="auto"`` resolves through the
    execution planner (:mod:`repro.plan`): profile rows for this program
    and size when warm, the static cost model when cold.  Whatever is
    chosen is bit-identical to ``interp`` -- the planner picks *how* to
    run, never *what* is computed.
    """
    if name == "auto":
        from repro.plan import default_planner

        plan = default_planner().plan_execution(
            fp, n, m, schedule=schedule, is_doall=is_doall, jobs=jobs,
        )
        name, jobs, tile = plan.backend, plan.jobs, plan.tile
    return get(name).runner(fp, n, m, store, schedule, is_doall, jobs, tile)


# ------------------------------------------------------------------ #
# the built-in four
# ------------------------------------------------------------------ #


def _run_interp(
    fp: FusedProgram,
    n: int,
    m: int,
    store: ArrayStore,
    schedule: Optional[IVec],
    is_doall: bool,
    jobs: Optional[int],
    tile: Optional[int] = None,
) -> ArrayStore:
    from repro.codegen.interp import run_fused

    return run_fused(fp, n, m, store=store, mode="serial")


def _run_compiled(
    fp: FusedProgram,
    n: int,
    m: int,
    store: ArrayStore,
    schedule: Optional[IVec],
    is_doall: bool,
    jobs: Optional[int],
    tile: Optional[int] = None,
) -> ArrayStore:
    from repro.codegen.pycompile import compile_fused

    compile_fused(fp)(store, n, m)
    return store


def _run_numpy(
    fp: FusedProgram,
    n: int,
    m: int,
    store: ArrayStore,
    schedule: Optional[IVec],
    is_doall: bool,
    jobs: Optional[int],
    tile: Optional[int] = None,
) -> ArrayStore:
    from repro.codegen.nplower import compile_numpy

    compile_numpy(fp, schedule=schedule)(store, n, m)
    return store


def _run_parallel(
    fp: FusedProgram,
    n: int,
    m: int,
    store: ArrayStore,
    schedule: Optional[IVec],
    is_doall: bool,
    jobs: Optional[int],
    tile: Optional[int] = None,
) -> ArrayStore:
    from repro.perf.parallel import ParallelExecutor

    mode = "doall" if is_doall else "hyperplane"
    with ParallelExecutor(jobs, **({} if tile is None else {"tile": tile})) as ex:
        return ex.run(
            fp, n, m, store=store, mode=mode,
            schedule=None if is_doall else schedule,
        )


register(ExecutionBackend(
    "interp", "tree-walking interpreter (serial; ground truth)", _run_interp,
))
register(ExecutionBackend(
    "compiled", "generated Python, per-row numpy slices", _run_compiled,
))
register(ExecutionBackend(
    "numpy", "staged whole-array numpy lowering", _run_numpy,
))
register(ExecutionBackend(
    "parallel", "chunked thread/process pool execution", _run_parallel,
))
