"""repro.core -- the Session + PassManager compilation core.

The composable heart of the library (docs/ARCHITECTURE.md):

* :class:`~repro.core.session.Session` owns every piece of cross-cutting
  context -- options, budget, tracer, metrics registry, memo caches,
  accumulated diagnostics -- and exposes ``fuse`` / ``fuse_program`` /
  ``fuse_program_resilient`` / ``fuse_many`` (batch compilation).
* :class:`~repro.core.manager.PassManager` runs the pipeline as
  registered :class:`~repro.core.passes.Pass` objects (parse -> validate
  -> lint -> extract-mldg -> legality -> fuse -> verify-retiming ->
  codegen) with uniform tracing, metrics and error-to-diagnostic
  conversion.
* :mod:`~repro.core.strategies` registers the paper's algorithms as
  reorderable strategy passes consumed by :func:`repro.fusion.fuse`.
* :class:`~repro.core.codes.ExitCode` is the one exit-code table shared
  by every CLI subcommand.

This ``__init__`` resolves its public names lazily (PEP 562): the
low-level modules (:mod:`repro.perf.memo`, :mod:`repro.codegen.pycompile`)
import :mod:`repro.core.context` at import time, and a heavy eager
``__init__`` here would turn that into a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.codes import ExitCode
from repro.core.context import current_session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backends import ExecutionBackend, backend_names, execute_fused
    from repro.core.batch import BATCH_SCHEMA, BatchEntry, BatchReport
    from repro.core.manager import PassManager, diagnostics_from_exception
    from repro.core.passes import Artifact, Pass, resilient_passes, strict_passes
    from repro.core.session import (
        LADDER_VARIANTS,
        Session,
        SessionCaches,
        SessionOptions,
    )

__all__ = [
    "Artifact",
    "BATCH_SCHEMA",
    "BatchEntry",
    "BatchReport",
    "ExecutionBackend",
    "ExitCode",
    "LADDER_VARIANTS",
    "Pass",
    "PassManager",
    "Session",
    "SessionCaches",
    "SessionOptions",
    "backend_names",
    "current_session",
    "diagnostics_from_exception",
    "execute_fused",
    "resilient_passes",
    "strict_passes",
]

_LAZY = {
    "Artifact": ("repro.core.passes", "Artifact"),
    "ExecutionBackend": ("repro.core.backends", "ExecutionBackend"),
    "backend_names": ("repro.core.backends", "backend_names"),
    "execute_fused": ("repro.core.backends", "execute_fused"),
    "Pass": ("repro.core.passes", "Pass"),
    "strict_passes": ("repro.core.passes", "strict_passes"),
    "resilient_passes": ("repro.core.passes", "resilient_passes"),
    "PassManager": ("repro.core.manager", "PassManager"),
    "diagnostics_from_exception": ("repro.core.manager", "diagnostics_from_exception"),
    "Session": ("repro.core.session", "Session"),
    "SessionCaches": ("repro.core.session", "SessionCaches"),
    "SessionOptions": ("repro.core.session", "SessionOptions"),
    "LADDER_VARIANTS": ("repro.core.session", "LADDER_VARIANTS"),
    "BatchEntry": ("repro.core.batch", "BatchEntry"),
    "BatchReport": ("repro.core.batch", "BatchReport"),
    "BATCH_SCHEMA": ("repro.core.batch", "BATCH_SCHEMA"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> "list[str]":
    return sorted(__all__)
