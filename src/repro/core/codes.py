"""The one exit-code table shared by every ``repro-fuse`` subcommand.

Before this module, ``lint`` and ``run`` each defined their exit codes
independently; the table below is now the single authority (documented in
docs/DIAGNOSTICS.md):

====  ==============================================================
code  meaning
====  ==============================================================
0     success (for ``lint``: clean, note-severity findings allowed)
1     input failure: parse/validation/fusion/budget errors, a batch
      with at least one failed program, an empty stats registry --
      or, for ``lint``, warning-severity findings only
2     usage error (bad flags or flag values; argparse errors), or,
      for ``lint``, error-severity findings / unreadable input
====  ==============================================================
"""

from __future__ import annotations

import enum

__all__ = ["ExitCode"]


class ExitCode(enum.IntEnum):
    """Process exit codes for the ``repro-fuse`` CLI."""

    #: Success.  For ``lint``: no diagnostics above note severity.
    OK = 0
    #: The input (or one program of a batch) failed; for ``lint``:
    #: warning-severity findings.
    FAILURE = 1
    #: The invocation itself was malformed; for ``lint``: error-severity
    #: findings or an unreadable/unparseable input.
    USAGE = 2
