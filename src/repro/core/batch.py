"""Batch compilation: a thread pool over independent programs.

:func:`run_batch` (the engine behind :meth:`Session.fuse_many` and
``repro-fuse batch``) compiles each program through the session's
pipeline on a worker pool.  Worker threads start with a clean context and
explicitly enter the session's scope, so concurrent sessions never leak
caches, budgets, tracers or registries into each other -- the isolation
tests in ``tests/test_core_batch.py`` hammer exactly that.

Per program the report records status, strategy/parallelism (or the rung
the ladder came to rest on), the structured diagnostics, notes and -- when
the session traces -- a per-program trace id joining the entry to its own
:class:`~repro.obs.Tracer`.  The trace id is assigned *before* the
compile and the tracer attached in a ``finally``, so a program whose
compile (or whose exception's own ``__str__``) misbehaves still keeps its
id -- :func:`run_batch` asserts exactly that.  One failed program never
aborts the batch; its typed error is recorded and the batch continues.

``timeout_ms`` arms a per-program deadline
:class:`~repro.resilience.budget.Budget` through
:func:`repro.core.context.budget_scope`, so concurrent workers can run
under different deadlines against one shared session.  ``pool="process"``
compiles each program in a worker *process* over the ``repro-serve/1``
envelopes (crash isolation for untrusted inputs; the supervised,
retrying variant of this mode is :mod:`repro.serve`).

The aggregate is a :class:`BatchReport` (JSON schema ``repro-batch/1``)
with text and JSON renderings.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.core import context as _context
from repro.fusion.driver import Strategy
from repro.lint.diagnostics import Diagnostic
from repro.loopir import LoopNest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import Session

__all__ = ["BATCH_POOLS", "BATCH_SCHEMA", "BatchEntry", "BatchReport", "run_batch"]

BATCH_POOLS = ("thread", "process")

BATCH_SCHEMA = "repro-batch/1"


@dataclass
class BatchEntry:
    """The outcome of compiling one program of a batch."""

    index: int
    name: str
    status: str = "ok"  # "ok" | "error"
    strategy: Optional[str] = None
    parallelism: Optional[str] = None
    rung: Optional[str] = None
    notes: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None
    trace_id: Optional[str] = None
    tracer: Optional[obs.Tracer] = field(default=None, repr=False)
    wall_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "status": self.status,
            "strategy": self.strategy,
            "parallelism": self.parallelism,
            "rung": self.rung,
            "notes": list(self.notes),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "error": self.error,
            "traceId": self.trace_id,
            "wallMs": round(self.wall_ms, 3),
        }


@dataclass
class BatchReport:
    """Everything one :meth:`Session.fuse_many` run produced."""

    jobs: int
    resilient: bool
    entries: List[BatchEntry]
    total_ms: float = 0.0

    @property
    def ok_count(self) -> int:
        return sum(1 for e in self.entries if e.ok)

    @property
    def error_count(self) -> int:
        return sum(1 for e in self.entries if not e.ok)

    @property
    def ok(self) -> bool:
        return self.error_count == 0

    def entry(self, name: str) -> BatchEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise KeyError(f"no batch entry named {name!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BATCH_SCHEMA,
            "jobs": self.jobs,
            "resilient": self.resilient,
            "okCount": self.ok_count,
            "errorCount": self.error_count,
            "totalMs": round(self.total_ms, 3),
            "programs": [e.to_dict() for e in self.entries],
        }

    def render_text(self) -> str:
        lines = [
            f"batch: {len(self.entries)} programs, jobs={self.jobs}, "
            f"{self.ok_count} ok, {self.error_count} failed"
            + (" (resilient)" if self.resilient else "")
        ]
        width = max((len(e.name) for e in self.entries), default=0)
        for e in self.entries:
            if e.ok:
                outcome = (
                    f"rung={e.rung}" if e.rung is not None
                    else f"strategy={e.strategy}"
                )
                detail = f"{outcome}, parallelism={e.parallelism}"
            else:
                assert e.error is not None
                detail = f"{e.error['type']}: {e.error['message']}"
            extras = []
            if e.diagnostics:
                extras.append(f"{len(e.diagnostics)} diagnostics")
            if e.trace_id is not None:
                extras.append(f"trace={e.trace_id}")
            tail = f"  [{', '.join(extras)}]" if extras else ""
            lines.append(
                f"  {e.name.ljust(width)}  {e.status:5s}  {detail}{tail}"
            )
        return "\n".join(lines)


def _normalize(
    programs: Sequence[Any], names: Optional[Sequence[str]]
) -> List[Tuple[str, Union[str, LoopNest]]]:
    if names is not None and len(names) != len(programs):
        raise ValueError(
            f"{len(names)} names for {len(programs)} programs"
        )
    out: List[Tuple[str, Union[str, LoopNest]]] = []
    for k, item in enumerate(programs):
        if isinstance(item, tuple) and len(item) == 2:
            name, src = item
            out.append((str(name), src))
        else:
            name = names[k] if names is not None else f"program[{k}]"
            out.append((name, item))
    return out


def _error_dict(exc: BaseException) -> Dict[str, Any]:
    """A JSON-safe error record that survives hostile exceptions.

    ``str(exc)`` and ``exc.diagnostics`` run arbitrary user-adjacent code;
    if either raises, the record still comes back (and the batch worker's
    own error handler -- which calls this -- cannot blow up and strand the
    entry without its trace id)."""
    try:
        message = str(exc)
    except Exception:
        message = f"<unprintable {type(exc).__name__}>"
    try:
        diagnostics = [
            d.to_dict() for d in getattr(exc, "diagnostics", None) or []
        ]
    except Exception:
        diagnostics = []
    return {
        "type": type(exc).__name__,
        "message": message,
        "diagnostics": diagnostics,
    }


def _compile_one(
    session: "Session",
    entry: BatchEntry,
    source: Union[str, LoopNest],
    *,
    strategy: Optional[Union[Strategy, str]],
    resilient: bool,
    timeout_ms: Optional[float] = None,
) -> BatchEntry:
    t0 = time.perf_counter()
    tracer = obs.Tracer() if session.tracer is not None else None
    if tracer is not None:
        # assigned eagerly: whatever happens below, the entry keeps the id
        # that joins it to its tracer
        entry.trace_id = tracer.trace_id
    try:
        budget = None
        if timeout_ms is not None:
            from repro.resilience.budget import Budget

            budget = Budget(deadline_ms=timeout_ms).start()
        with _context.budget_scope(budget) if budget is not None else _noop_ctx():
            with session._program_scope(tracer):
                with obs.trace_span("batch.program", program=entry.name):
                    if resilient:
                        out = session.fuse_program_resilient(source)
                        entry.rung = out.rung.label
                        entry.parallelism = out.resilient.parallelism.value
                    else:
                        out = session.fuse_program(source, strategy=strategy)
                        entry.strategy = out.fusion.strategy.value
                        entry.parallelism = out.fusion.parallelism.value
                    entry.notes = list(out.notes)
                    entry.diagnostics = list(out.diagnostics)
    except Exception as exc:  # one bad program never sinks the batch
        entry.status = "error"
        entry.error = _error_dict(exc)
        try:
            entry.diagnostics = list(getattr(exc, "diagnostics", None) or [])
        except Exception:
            entry.diagnostics = []
    finally:
        entry.wall_ms = (time.perf_counter() - t0) * 1000.0
        if tracer is not None:
            entry.tracer = tracer
    return entry


def _noop_ctx():
    from contextlib import nullcontext

    return nullcontext()


def _compile_one_process(
    session: "Session",
    entry: BatchEntry,
    source: Union[str, LoopNest],
    executor: ProcessPoolExecutor,
    *,
    strategy: Optional[Union[Strategy, str]],
    resilient: bool,
    timeout_ms: Optional[float],
) -> BatchEntry:
    """Compile one program in a worker *process* over repro-serve/1."""
    from repro.loopir.printer import format_program
    from repro.serve import worker as serve_worker
    from repro.serve.wire import request_from_program

    t0 = time.perf_counter()
    try:
        text = source if isinstance(source, str) else format_program(source)
        chosen = strategy if strategy is not None else session.options.strategy
        store = session.caches.store
        req = request_from_program(
            entry.name,
            text,
            strategy=chosen.value if isinstance(chosen, Strategy) else str(chosen),
            resilient=resilient,
            min_rung=session.options.min_rung,
            deadline_ms=timeout_ms,
            ladder=session.options.ladder_labels(),
            prune_edges=session.options.prune_edges,
            verify_execution=session.options.verify_execution,
            # worker processes open their own handle on the same file
            store_path=store.path if store is not None else None,
        )
        resp = executor.submit(serve_worker.compile_request, req.to_dict()).result()
        entry.trace_id = resp.get("traceId")
        if resp.get("status") == "ok":
            entry.strategy = resp.get("strategy")
            entry.rung = resp.get("rung")
            entry.parallelism = resp.get("parallelism")
            entry.notes = list(resp.get("notes") or [])
        else:
            entry.status = "error"
            entry.error = resp.get("error") or {
                "type": "WorkerError",
                "message": "worker returned a malformed response",
                "diagnostics": [],
            }
        entry.diagnostics = [
            Diagnostic.from_dict(d) for d in resp.get("diagnostics") or []
        ]
    except Exception as exc:  # pool broke / pickling / crash: record, go on
        entry.status = "error"
        entry.error = _error_dict(exc)
    finally:
        entry.wall_ms = (time.perf_counter() - t0) * 1000.0
    return entry


def run_batch(
    session: "Session",
    programs: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    strategy: Optional[Union[Strategy, str]] = None,
    resilient: bool = False,
    names: Optional[Sequence[str]] = None,
    timeout_ms: Optional[float] = None,
    pool: str = "thread",
) -> BatchReport:
    """Compile ``programs`` concurrently under ``session``.

    ``programs`` items are DSL text, :class:`LoopNest` objects, or
    ``(name, source)`` pairs; ``names`` labels positional items.  Entries
    come back in input order regardless of completion order.

    ``timeout_ms`` puts each program under its own deadline
    :class:`~repro.resilience.budget.Budget` (via
    :func:`repro.core.context.budget_scope`, so the shared session object
    is never mutated).  ``pool`` selects the worker flavor: ``"thread"``
    (default; shared caches, cheapest) or ``"process"`` (crash isolation;
    each program travels as a ``repro-serve/1`` envelope through
    :func:`repro.serve.worker.compile_request`).  The supervised,
    retrying, admission-controlled variant of process mode is the
    :mod:`repro.serve` daemon.
    """
    if pool not in BATCH_POOLS:
        raise ValueError(f"unknown pool {pool!r}; expected one of {BATCH_POOLS}")
    items = _normalize(programs, names)
    if jobs is None:
        # the old hard-coded default lives in the planning layer now
        from repro.plan.model import DEFAULT_BATCH_JOBS

        jobs = DEFAULT_BATCH_JOBS
    jobs = max(1, int(jobs))
    reg_scope = (
        obs.overriding_registry(session.registry)
        if session.registry is not None
        else None
    )
    t0 = time.perf_counter()
    entries = [BatchEntry(index=k, name=name) for k, (name, _) in enumerate(items)]
    try:
        if reg_scope is not None:
            reg_scope.__enter__()
        obs.default_registry().counter("core.batch.runs").inc()
        if pool == "process":
            with ProcessPoolExecutor(max_workers=jobs) as executor:
                with ThreadPoolExecutor(
                    max_workers=jobs, thread_name_prefix="repro-batch"
                ) as waiters:
                    futures = [
                        waiters.submit(
                            _compile_one_process,
                            session,
                            entry,
                            src,
                            executor,
                            strategy=strategy,
                            resilient=resilient,
                            timeout_ms=timeout_ms,
                        )
                        for entry, (_, src) in zip(entries, items)
                    ]
                    for f in futures:
                        f.result()
        elif jobs == 1:
            for entry, (_, src) in zip(entries, items):
                _compile_one(
                    session,
                    entry,
                    src,
                    strategy=strategy,
                    resilient=resilient,
                    timeout_ms=timeout_ms,
                )
        else:
            with ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="repro-batch"
            ) as workers:
                futures = [
                    workers.submit(
                        _compile_one,
                        session,
                        entry,
                        src,
                        strategy=strategy,
                        resilient=resilient,
                        timeout_ms=timeout_ms,
                    )
                    for entry, (_, src) in zip(entries, items)
                ]
                for f in futures:
                    f.result()
        if session.tracer is not None and pool == "thread":
            # the satellite contract: trace ids survive *any* outcome,
            # including exceptions whose own __str__ raises
            missing = [e.name for e in entries if e.trace_id is None]
            assert not missing, f"batch entries lost their trace ids: {missing}"
        report = BatchReport(
            jobs=jobs,
            resilient=resilient,
            entries=entries,
            total_ms=(time.perf_counter() - t0) * 1000.0,
        )
        reg = obs.default_registry()
        reg.counter("core.batch.programs").inc(len(entries))
        reg.counter("core.batch.errors").inc(report.error_count)
        return report
    finally:
        if reg_scope is not None:
            reg_scope.__exit__(None, None, None)
