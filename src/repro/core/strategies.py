"""The fusion strategies as first-class, registered passes.

Each algorithm of the paper (Algorithms 2-5 plus the no-retiming direct
check) is wrapped in a :class:`StrategyPass`: a small object with a name,
an applicability predicate and a ``run`` method.  The fusion driver
(:func:`repro.fusion.fuse`) dispatches through :func:`run_strategy`
instead of a hard-coded ``if`` chain, so strategies are reorderable and
individually testable, and the AUTO policy (:data:`AUTO_SEQUENCE`) is an
explicit, inspectable sequence rather than control flow.

The driver stays the owner of result construction and verification: every
pass returns through the ``make_result`` callback it is handed, which runs
:func:`repro.retiming.verify.verify_retiming` before anything escapes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.fusion.acyclic import acyclic_parallel_retiming
from repro.fusion.cyclic import cyclic_parallel_retiming
from repro.fusion.errors import FusionError, NoParallelRetimingError
from repro.fusion.hyperplane import hyperplane_parallel_fusion
from repro.fusion.legal import legal_fusion_retiming
from repro.graph.analysis import is_acyclic
from repro.graph.legality import is_fusion_legal
from repro.graph.mldg import MLDG
from repro.resilience.budget import Budget
from repro.retiming import ROW_SCHEDULE, Retiming

__all__ = [
    "StrategyPass",
    "STRATEGY_PASSES",
    "AUTO_SEQUENCE",
    "strategy_pass",
    "run_strategy",
]

#: ``make_result(g, retiming, strategy_name, schedule=..., hyperplane=...,
#: notes=...)`` -- supplied by the driver; verifies and wraps the retiming.
MakeResult = Callable[..., object]


class StrategyPass:
    """One fusion algorithm as a registered, reorderable unit."""

    #: Matches :class:`repro.fusion.Strategy` values.
    name: str = "?"

    def applies(self, g: MLDG) -> bool:
        """Cheap structural applicability check (used by AUTO)."""
        return True

    def run(
        self, g: MLDG, make_result: MakeResult, *, budget: Optional[Budget] = None
    ) -> object:
        raise NotImplementedError


class DirectPass(StrategyPass):
    """No retiming; Theorem 3.1 feasibility check only."""

    name = "direct"

    def applies(self, g: MLDG) -> bool:
        return is_fusion_legal(g)

    def run(
        self, g: MLDG, make_result: MakeResult, *, budget: Optional[Budget] = None
    ) -> object:
        if not is_fusion_legal(g):
            from repro.lint.engine import LintContext
            from repro.lint.registry import get_rule

            diags = list(get_rule("LF201").run(LintContext(mldg=g)))
            raise FusionError(
                "direct fusion is illegal: fusion-preventing dependencies exist "
                "(use LLOFRA or a parallel strategy)",
                diagnostics=diags,
            )
        return make_result(
            g,
            Retiming.zero(dim=g.dim),
            self.name,
            schedule=ROW_SCHEDULE,
            hyperplane=None,
            notes=["no retiming applied"],
        )


class LegalOnlyPass(StrategyPass):
    """Algorithm 2 (LLOFRA): legal fusion, serial fused loop."""

    name = "legal-only"

    def run(
        self, g: MLDG, make_result: MakeResult, *, budget: Optional[Budget] = None
    ) -> object:
        r = legal_fusion_retiming(g, check=False, budget=budget)
        return make_result(g, r, self.name, schedule=ROW_SCHEDULE, hyperplane=None)


class AcyclicPass(StrategyPass):
    """Algorithm 3: DOALL fusion of an acyclic MLDG (Theorem 4.1)."""

    name = "acyclic"

    def applies(self, g: MLDG) -> bool:
        return is_acyclic(g)

    def run(
        self, g: MLDG, make_result: MakeResult, *, budget: Optional[Budget] = None
    ) -> object:
        r = acyclic_parallel_retiming(g, check=False, budget=budget)
        return make_result(g, r, self.name, schedule=ROW_SCHEDULE, hyperplane=None)


class CyclicPass(StrategyPass):
    """Algorithm 4: DOALL fusion of a cyclic MLDG (Theorem 4.2)."""

    name = "cyclic"

    def run(
        self, g: MLDG, make_result: MakeResult, *, budget: Optional[Budget] = None
    ) -> object:
        r = cyclic_parallel_retiming(g, check=False, budget=budget)
        return make_result(g, r, self.name, schedule=ROW_SCHEDULE, hyperplane=None)


class HyperplanePass(StrategyPass):
    """Algorithm 5: wavefront parallelism for any legal MLDG (Theorem 4.4)."""

    name = "hyperplane"

    def run(
        self,
        g: MLDG,
        make_result: MakeResult,
        *,
        budget: Optional[Budget] = None,
        notes: Optional[List[str]] = None,
    ) -> object:
        hp = hyperplane_parallel_fusion(g, check=False, budget=budget)
        return make_result(
            g,
            hp.retiming,
            self.name,
            schedule=hp.schedule,
            hyperplane=hp.hyperplane,
            notes=notes,
        )


STRATEGY_PASSES: Dict[str, StrategyPass] = {
    p.name: p
    for p in (
        DirectPass(),
        LegalOnlyPass(),
        AcyclicPass(),
        CyclicPass(),
        HyperplanePass(),
    )
}

#: The AUTO policy: first applicable DOALL pass, then the Theorem 4.2
#: attempt, then the always-applicable hyperplane fallback.
AUTO_SEQUENCE: Tuple[str, ...] = ("acyclic", "cyclic", "hyperplane")


def strategy_pass(name: str) -> StrategyPass:
    """Look up a registered strategy pass by its :class:`Strategy` value."""
    try:
        return STRATEGY_PASSES[name]
    except KeyError:
        raise KeyError(
            f"no strategy pass named {name!r}; known: {sorted(STRATEGY_PASSES)}"
        ) from None


def run_strategy(
    g: MLDG,
    name: str,
    make_result: MakeResult,
    *,
    budget: Optional[Budget] = None,
) -> object:
    """Dispatch one fusion query through the registered strategy passes.

    ``name`` is a :class:`repro.fusion.Strategy` value; ``"auto"`` walks
    :data:`AUTO_SEQUENCE` exactly as the original driver did: Algorithm 3
    for DAGs, else Algorithm 4, else (on a Theorem 4.2 failure) Algorithm 5
    with an explanatory note.
    """
    if name != "auto":
        return strategy_pass(name).run(g, make_result, budget=budget)

    if strategy_pass("acyclic").applies(g):
        return strategy_pass("acyclic").run(g, make_result, budget=budget)
    try:
        return strategy_pass("cyclic").run(g, make_result, budget=budget)
    except NoParallelRetimingError as exc:
        hp: HyperplanePass = STRATEGY_PASSES["hyperplane"]  # type: ignore[assignment]
        return hp.run(
            g,
            make_result,
            budget=budget,
            notes=[
                f"Theorem 4.2 conditions failed ({exc.phase} phase); "
                "fell back to hyperplane parallelism"
            ],
        )
