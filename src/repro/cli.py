"""Command-line interface.

Main subcommands::

    repro-fuse analyze  program.loop   # dependence report + MLDG
    repro-fuse lint     program.loop   # static diagnostics (text/json/sarif)
    repro-fuse fuse     program.loop   # retime + fuse + emit code
    repro-fuse run      program.loop   # hardened pipeline (budgets, --resilient,
                                       # --backend interp|compiled|numpy|parallel)
    repro-fuse batch    a.loop b.loop  # compile many programs concurrently
                                       # (one Session, --jobs workers,
                                       # --timeout-ms, --batch-pool process)
    repro-fuse serve                   # fault-tolerant compilation daemon
                                       # (repro-serve/1; docs/SERVING.md)
    repro-fuse loadgen                 # drive the daemon under load/chaos
                                       # (writes BENCH_serve.json)
    repro-fuse bench                   # perf harness (text/json, BENCH_perf shape)
    repro-fuse stats                   # dump the observability metrics registry
    repro-fuse cache    stats          # inspect/maintain the persistent store
                                       # (stats|verify|prune|clear; docs/CACHING.md)
    repro-fuse demo     fig2           # run a gallery example end to end

``python -m repro.cli`` works identically.  ``fuse``, ``run`` and ``bench``
accept ``--trace PATH --trace-format text|json|chrome`` to export a span
trace of the invocation, and ``--metrics PATH`` to persist the metrics
registry (render it later with ``repro-fuse stats --input PATH``); see
docs/OBSERVABILITY.md.

``fuse``, ``run``, ``batch``, ``bench``, ``serve`` and ``loadgen`` accept
``--store PATH``: a persistent sqlite-backed compilation cache (the L2
disk tier under the in-memory memo caches) shared safely across processes
and serve workers.  ``REPRO_FUSE_STORE`` sets the same default from the
environment; ``REPRO_FUSE_STORE_MAX_ENTRIES`` / ``REPRO_FUSE_STORE_MAX_MB``
set its caps.  See docs/CACHING.md.

Exit codes follow the single shared table in
:class:`repro.core.ExitCode` (documented in docs/DIAGNOSTICS.md):
``analyze``/``fuse``/``run``/``demo``/``report`` return 0 (``OK``) on
success, 1 (``FAILURE``) on input errors (parse/validation/fusion/budget)
and 2 (``USAGE``) on usage errors.  ``run --format json`` always prints a
JSON document -- a result report on success, an error report
(``{"error": ...}``) on failure.  ``batch`` returns 0 only when *every*
program compiled.  ``lint`` maps the same codes onto the linter
convention: 0 = clean (notes allowed), 1 = warnings only, 2 = errors or
an unreadable/unparseable input.  ``stats`` exits 1 when the registry has
nothing to report (so CI smoke checks catch silently-uninstrumented
builds).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro import __version__, obs
from repro.baselines import direct_fusion
from repro.core.codes import ExitCode
from repro.codegen import apply_fusion, emit_fused_program
from repro.depend import dependence_table, describe_dependencies, extract_mldg
from repro.formats import DOT, JSON, SARIF, TEXT, add_format_argument
from repro.fusion import FusionError, Strategy, fuse
from repro.graph import mldg_to_dot, mldg_to_json
from repro.loopir import ParseError, ValidationError, parse_program
from repro.machine import profile_fusion, unfused_profile
from repro.obs import TRACE_FORMATS
from repro.resilience.budget import BudgetExceededError as _BudgetExceededError

__all__ = ["main", "build_arg_parser"]

_DEMOS = {
    "fig2": "figure 2 (running example; Algorithm 4, DOALL)",
    "fig8": "figure 8 (acyclic; Algorithm 3, DOALL)",
    "fig14": "figure 14 (cyclic; Algorithm 5, hyperplane)",
    "iir2d": "2-D IIR filter section (reconstructed example 4)",
    "sor": "SOR-style sweep (reconstructed example 5)",
}


def _positive_int(text: str) -> int:
    """Argparse type for worker/job counts: an integer >= 1.

    Rejecting ``0``/negatives here turns them into argparse usage errors
    (exit 2 with the subcommand's usage line) instead of a deadlock or an
    obscure pool failure deep inside an executor.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer >= 1, got {value}"
        )
    return value


def _jobs_list(text: str) -> Tuple[int, ...]:
    """Argparse type for comma-separated job counts (each >= 1)."""
    try:
        values = tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one job count")
    if any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"job counts must be >= 1, got {list(values)}"
        )
    return values


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability options shared by ``fuse``, ``run`` and ``bench``."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="collect a span trace of this invocation and write it to PATH",
    )
    add_format_argument(
        group,
        list(TRACE_FORMATS),
        default=JSON,
        flag="--trace-format",
        help_suffix="chrome output loads at chrome://tracing or ui.perfetto.dev",
    )
    group.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the metrics registry (repro-stats/1 JSON) to PATH on exit",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    """The persistent-store option shared by the compiling subcommands."""
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="persistent compilation cache (sqlite file; L2 tier under the "
        "memo caches, shared across processes; default $REPRO_FUSE_STORE; "
        "see docs/CACHING.md)",
    )


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuse",
        description="Polynomial-time nested loop fusion with full parallelism "
        "(Sha/O'Neil/Passos, ICPP 1996)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="dependence analysis of a DSL program")
    p_an.add_argument("file", help="loop DSL source file ('-' for stdin)")
    add_format_argument(
        p_an,
        [TEXT, JSON, DOT, SARIF],
        default=None,
        help_suffix="sarif emits lint diagnostics",
    )
    p_an.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_an.add_argument("--json", action="store_true", help="emit MLDG JSON")

    p_li = sub.add_parser(
        "lint", help="static diagnostics (model, legality, hygiene rules)"
    )
    p_li.add_argument("file", help="loop DSL source file ('-' for stdin)")
    add_format_argument(p_li, [TEXT, JSON, SARIF])

    p_fu = sub.add_parser("fuse", help="fuse a DSL program with full parallelism")
    p_fu.add_argument("file", help="loop DSL source file ('-' for stdin)")
    p_fu.add_argument(
        "--strategy",
        default="auto",
        choices=[s.value for s in Strategy],
        help="force a specific algorithm (default: auto)",
    )
    p_fu.add_argument("--no-emit", action="store_true", help="skip code emission")
    p_fu.add_argument(
        "--verify",
        action="store_true",
        help="execute original and fused programs and compare results",
    )
    p_fu.add_argument(
        "--profile",
        metavar="N,M,P",
        help="simulate on an N x M iteration space with P processors",
    )
    p_fu.add_argument(
        "--iterspace",
        action="store_true",
        help="render the fused iteration space (Figures 7/13 style)",
    )
    p_fu.add_argument(
        "--locality",
        action="store_true",
        help="report reuse distances before and after fusion",
    )
    p_fu.add_argument(
        "--compile",
        action="store_true",
        dest="compile_kernel",
        help="print the compiled Python/numpy kernel for the fused program",
    )
    _add_store_argument(p_fu)
    _add_trace_arguments(p_fu)

    p_run = sub.add_parser(
        "run",
        help="hardened pipeline: resource budgets and verified degradation",
    )
    p_run.add_argument("file", help="loop DSL source file ('-' for stdin)")
    p_run.add_argument(
        "--resilient",
        action="store_true",
        help="degrade through the ladder (doall -> hyperplane -> legal-only "
        "-> partition -> original) instead of failing on the first error",
    )
    p_run.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="N",
        help="wall-clock budget in milliseconds",
    )
    p_run.add_argument(
        "--max-nodes", type=int, default=None, metavar="N", help="MLDG node cap"
    )
    p_run.add_argument(
        "--max-edges", type=int, default=None, metavar="N", help="MLDG edge cap"
    )
    p_run.add_argument(
        "--max-relaxation-rounds",
        type=int,
        default=None,
        metavar="N",
        help="Bellman-Ford relaxation-round cap",
    )
    p_run.add_argument(
        "--min-rung",
        default="none",
        choices=["none", "partition", "legal-only", "hyperplane", "doall"],
        help="weakest acceptable ladder rung with --resilient (default: none)",
    )
    add_format_argument(p_run, [TEXT, JSON])
    p_run.add_argument("--no-emit", action="store_true", help="skip code emission")
    p_run.add_argument(
        "--backend",
        choices=["interp", "compiled", "numpy", "parallel", "auto"],
        default=None,
        help="also execute the fused program with this backend "
        "(compiled/numpy/parallel results are verified bit-identical against "
        "the interpreter; auto = execution planner picks per shape, "
        "docs/PLANNING.md; not available with --resilient)",
    )
    p_run.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker count for --backend parallel (default: cpu count)",
    )
    p_run.add_argument(
        "--size",
        metavar="N,M",
        default="64,64",
        help="iteration-space size for --backend execution (default 64,64)",
    )
    _add_store_argument(p_run)
    _add_trace_arguments(p_run)

    p_ba = sub.add_parser(
        "batch",
        help="compile many programs concurrently under one session",
    )
    p_ba.add_argument(
        "files", nargs="+", help="loop DSL source files (one program each)"
    )
    p_ba.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="worker-thread count (default: the execution planner's batch "
        "default, 4; 1 = serial)",
    )
    p_ba.add_argument(
        "--strategy",
        default="auto",
        choices=[s.value for s in Strategy],
        help="fusion strategy for every program (default: auto)",
    )
    p_ba.add_argument(
        "--resilient",
        action="store_true",
        help="compile through the degradation ladder instead of the "
        "strict pipeline",
    )
    p_ba.add_argument(
        "--min-rung",
        default="none",
        choices=["none", "partition", "legal-only", "hyperplane", "doall"],
        help="weakest acceptable ladder rung with --resilient (default: none)",
    )
    p_ba.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="N",
        help="per-program wall-clock budget in milliseconds",
    )
    p_ba.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="N",
        help="per-program deadline override: each program gets its own "
        "armed Budget via budget_scope (wins over --deadline-ms)",
    )
    p_ba.add_argument(
        "--batch-pool",
        choices=["thread", "process"],
        default="thread",
        dest="batch_pool",
        help="worker flavor: thread (shared caches) or process "
        "(crash isolation over repro-serve/1 envelopes)",
    )
    add_format_argument(p_ba, [TEXT, JSON])
    _add_store_argument(p_ba)
    _add_trace_arguments(p_ba)

    p_sv = sub.add_parser(
        "serve",
        help="run the fault-tolerant compilation daemon (repro-serve/1)",
    )
    p_sv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_sv.add_argument("--port", type=int, default=8337, metavar="N",
                      help="bind port (default 8337; 0 = ephemeral)")
    p_sv.add_argument("--workers", type=_positive_int, default=2, metavar="N",
                      help="pool worker processes (default 2)")
    p_sv.add_argument("--backend",
                      choices=["interp", "compiled", "numpy", "parallel", "auto"],
                      default="interp",
                      help="default execution backend stamped onto requests "
                      "that carry none (auto = execution planner resolves "
                      "per program, docs/PLANNING.md; explicit request "
                      "backends always win)")
    p_sv.add_argument("--max-inflight", type=int, default=None, metavar="N",
                      help="admission quota before shedding (default workers*4)")
    p_sv.add_argument("--deadline-ms", type=float, default=10_000.0, metavar="N",
                      help="default per-request deadline (default 10000)")
    p_sv.add_argument("--max-attempts", type=int, default=3, metavar="N",
                      help="worker dispatch attempts per request (default 3)")
    p_sv.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                      help="consecutive worker faults per workload class "
                      "before the circuit opens (default 3)")
    p_sv.add_argument("--breaker-cooldown-ms", type=float, default=1_000.0,
                      metavar="N", help="open-circuit cooldown (default 1000)")
    p_sv.add_argument("--chaos", action="store_true",
                      help="honor request fault specs in workers "
                      "(testing only; never in production)")
    p_sv.add_argument("--seed", type=int, default=0, metavar="N",
                      help="backoff-jitter rng seed (default 0)")
    _add_store_argument(p_sv)

    p_lg = sub.add_parser(
        "loadgen",
        help="drive a compile service under load (writes BENCH_serve.json)",
    )
    p_lg.add_argument("--requests", type=int, default=50, metavar="N",
                      help="total requests (default 50)")
    p_lg.add_argument("--concurrency", type=_positive_int, default=8, metavar="N",
                      help="client threads (default 8)")
    p_lg.add_argument("--workers", type=_positive_int, default=2, metavar="N",
                      help="daemon pool workers when spawning (default 2)")
    p_lg.add_argument("--auto-every", type=int, default=0, metavar="N",
                      dest="auto_every",
                      help="every Nth request asks for backend=auto, so the "
                      "report's plan block shows the planner's picks "
                      "(default 0 = never)")
    p_lg.add_argument("--deadline-ms", type=float, default=10_000.0, metavar="N",
                      help="per-request deadline (default 10000)")
    p_lg.add_argument("--resilient-every", type=int, default=3, metavar="N",
                      help="every Nth request uses the resilient pipeline "
                      "(default 3; 0 = never)")
    p_lg.add_argument("--chaos-kill", type=int, default=0, metavar="N",
                      dest="chaos_kills",
                      help="requests carrying a seeded WorkerCrash (default 0)")
    p_lg.add_argument("--chaos-hang", type=int, default=0, metavar="N",
                      dest="chaos_hangs",
                      help="requests carrying a seeded WorkerHang (default 0)")
    p_lg.add_argument("--seed", type=int, default=0, metavar="N",
                      help="chaos/jitter seed (default 0)")
    p_lg.add_argument("--url", default=None, metavar="URL",
                      help="target a running daemon instead of spawning one")
    p_lg.add_argument("--out", default=None, metavar="PATH",
                      help="write the repro-bench-serve/1 JSON here "
                      "(e.g. BENCH_serve.json)")
    p_lg.add_argument("--warm-passes", type=int, default=1, metavar="N",
                      dest="warm_passes",
                      help="replay the request stream N times against the "
                      "same daemon to measure store warm-up (default 1)")
    _add_store_argument(p_lg)
    add_format_argument(p_lg, [TEXT, JSON])

    p_bench = sub.add_parser(
        "bench", help="performance harness (backends, memo caches, solvers)"
    )
    p_bench.add_argument(
        "--example",
        default="fig2",
        help="gallery example to time (default fig2; see repro.perf.bench)",
    )
    p_bench.add_argument(
        "--size", metavar="N,M", default="256,256",
        help="iteration-space size (default 256,256)",
    )
    p_bench.add_argument(
        "--sizes", metavar="N1xM1,N2xM2,...", default=None,
        help="size sweep overriding --size (e.g. 24x24,64x64,256x256) -- "
        "measures the interp/compiled/numpy crossover",
    )
    p_bench.add_argument(
        "--jobs", metavar="J1,J2,...", default="1,2,4", type=_jobs_list,
        help="comma-separated job counts for the parallel backend (default 1,2,4)",
    )
    p_bench.add_argument(
        "--backends", metavar="B1,B2,...", default="interp,compiled,numpy,parallel",
        help="comma-separated backends to time "
        "(default interp,compiled,numpy,parallel)",
    )
    p_bench.add_argument(
        "--pool", choices=["thread", "process"], default="thread",
        help="parallel-backend pool kind (default thread)",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timed runs per configuration (default 3)",
    )
    p_bench.add_argument(
        "--no-cache-bench", action="store_true",
        help="skip the fusion memo-cache benchmark",
    )
    p_bench.add_argument(
        "--no-solver-bench", action="store_true",
        help="skip the Bellman-Ford SLF-vs-rounds benchmark",
    )
    p_bench.add_argument(
        "--no-store-bench", action="store_true",
        help="skip the persistent-store cold/warm benchmark",
    )
    p_bench.add_argument(
        "--no-plan-bench", action="store_true",
        help="skip the execution-planner auto-vs-static benchmark",
    )
    add_format_argument(p_bench, [TEXT, JSON])
    p_bench.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the JSON document to PATH",
    )
    _add_store_argument(p_bench)
    _add_trace_arguments(p_bench)

    p_st = sub.add_parser(
        "stats", help="dump the observability metrics registry (repro-stats/1)"
    )
    p_st.add_argument(
        "file",
        nargs="?",
        default=None,
        help="optional loop DSL source ('-' for stdin): run the instrumented "
        "pipeline and one fused execution on it first, so the registry has "
        "solver/cache/execution activity to report",
    )
    p_st.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="render a repro-stats/1 JSON document previously written with "
        "--metrics instead of this process's registry",
    )
    p_st.add_argument(
        "--size", metavar="N,M", default="16,16",
        help="iteration-space size for the instrumented execution (default 16,16)",
    )
    add_format_argument(p_st, [TEXT, JSON])

    p_ca = sub.add_parser(
        "cache",
        help="inspect and maintain the persistent compilation store (L2)",
    )
    p_ca.add_argument(
        "action",
        choices=["stats", "verify", "prune", "clear"],
        help="stats: counters and sizes; verify: audit every row "
        "(exit 1 unless clean); prune: evict LRU rows to the caps; "
        "clear: delete every entry",
    )
    p_ca.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="store path (default: $REPRO_FUSE_STORE)",
    )
    add_format_argument(p_ca, [TEXT, JSON])
    p_ca.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="row cap for prune (default: the store's configured cap)",
    )
    p_ca.add_argument(
        "--max-mb", type=float, default=None, metavar="N",
        help="payload-size cap in MiB for prune (default: configured cap)",
    )
    p_ca.add_argument(
        "--repair", action="store_true",
        help="with verify: delete the rows that fail the audit",
    )

    p_demo = sub.add_parser("demo", help="run a gallery example")
    p_demo.add_argument("name", choices=sorted(_DEMOS), help="example name")

    p_rep = sub.add_parser(
        "report", help="regenerate every experiment table (no timing)"
    )
    p_rep.add_argument("--size", metavar="N,M", default="100,63",
                       help="iteration-space size (default 100,63)")

    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json as _json

    source = _read_source(args.file)
    path = "<stdin>" if args.file == "-" else args.file
    fmt = args.format or ("dot" if args.dot else "json" if args.json else "text")
    if fmt == "sarif":
        from repro.lint import lint_source, render_sarif

        result = lint_source(source, path=path)
        print(render_sarif(result))
        return ExitCode.FAILURE if result.has_errors else ExitCode.OK
    nest = parse_program(source)
    records = dependence_table(nest)
    g = extract_mldg(nest, check=False)
    if fmt == "dot":
        print(mldg_to_dot(g))
        return ExitCode.OK
    from repro.analysis.engine import analyze_nest
    from repro.lint import lint_source

    report = analyze_nest(nest, records=records, path=path)
    # error-severity lint findings (e.g. a must-race) fail the command, so
    # `repro-fuse analyze` doubles as a CI gate; warnings and notes do not.
    errors = lint_source(source, path=path).has_errors
    if fmt == "json":
        # additive superset of the MLDG JSON schema: nodes/edges unchanged,
        # with the semantic analysis report alongside
        payload = _json.loads(mldg_to_json(g))
        payload["analysis"] = report.to_dict()
        print(_json.dumps(payload, indent=2))
        return ExitCode.FAILURE if errors else ExitCode.OK
    from repro.graph import mldg_stats

    print(g.describe())
    print()
    print(mldg_stats(g).describe())
    print()
    print(describe_dependencies(records))
    outcome = direct_fusion(g)
    print()
    print(f"direct fusion: {outcome.describe()}")
    print()
    print(report.render_text())
    return ExitCode.FAILURE if errors else ExitCode.OK


def _report_fusion(
    g,
    result,
    nest=None,
    *,
    emit=True,
    verify=False,
    profile=None,
    iterspace=False,
    locality=False,
    compile_kernel=False,
) -> int:
    print(result.summary())
    if nest is not None and emit:
        fused = apply_fusion(nest, result.retiming, mldg=result.original)
        print()
        print("! ===== transformed program =====")
        print(emit_fused_program(fused))
    if nest is not None and verify:
        from repro.verify import verify_fusion_result

        reports = verify_fusion_result(nest, result)
        ok = all(r.equivalent for r in reports)
        print()
        print(
            f"verification: {len(reports)} executions "
            f"({', '.join(sorted({r.mode for r in reports}))}) -> "
            + ("ALL EQUIVALENT" if ok else "MISMATCH")
        )
        if not ok:
            return ExitCode.FAILURE
    if iterspace:
        from repro.viz import format_hyperplane_grid, format_iteration_space

        print()
        print("iteration space after retiming and fusion:")
        print(format_iteration_space(result.retimed))
        if result.hyperplane is not None:
            print()
            print(format_hyperplane_grid(result.schedule))
    if locality:
        from repro.machine import locality_report

        print()
        print("reuse distances (mean / max / hit-ratio @ 8, 64, 512):")
        for row in locality_report(g, 63, result.retiming):
            shape, mean, worst, *hits = row
            hits_text = ", ".join(f"{h:.2f}" for h in hits)
            print(f"  {shape:>8}: {mean:9.1f} / {worst:6d} / {hits_text}")
    if nest is not None and compile_kernel:
        from repro.codegen import apply_fusion as _apply
        from repro.codegen.pycompile import compile_fused

        fused = _apply(nest, result.retiming, mldg=result.original)
        print()
        print("# compiled Python/numpy kernel")
        print(compile_fused(fused).source)
    if profile:
        try:
            n, m, p = (int(x) for x in profile.split(","))
        except ValueError:
            print(f"bad --profile value {profile!r}; expected N,M,P", file=sys.stderr)
            return ExitCode.USAGE
        before = unfused_profile(g, n, m)
        after = profile_fusion(result, n, m)
        print()
        print(f"machine simulation (n={n}, m={m}, P={p}):")
        print(f"  unfused: {before.sync_count} syncs, T(P)={before.parallel_time(p, sync_cost=10)}")
        print(f"  fused  : {after.sync_count} syncs, T(P)={after.parallel_time(p, sync_cost=10)}")
    return ExitCode.OK


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.lint import lint_source, render_sarif

    try:
        source = _read_source(args.file)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.USAGE
    path = "<stdin>" if args.file == "-" else args.file
    result = lint_source(source, path=path)
    if args.format == "json":
        print(_json.dumps(result.to_dict(), indent=2))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(result.render_text())
    # the linter convention maps onto the shared table: 0 clean, 1 warnings,
    # 2 errors (docs/DIAGNOSTICS.md)
    return ExitCode(result.exit_code)


def _cmd_fuse(args: argparse.Namespace) -> int:
    nest = parse_program(_read_source(args.file))
    g = extract_mldg(nest)
    result = fuse(g, strategy=args.strategy)
    return _report_fusion(
        g,
        result,
        nest,
        emit=not args.no_emit,
        verify=args.verify,
        profile=args.profile,
        iterspace=args.iterspace,
        locality=args.locality,
        compile_kernel=args.compile_kernel,
    )


def _run_error_dict(exc: BaseException) -> dict:
    """JSON error report for ``run --format json`` failures."""
    out: dict = {
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "diagnostics": [
                d.to_dict() for d in getattr(exc, "diagnostics", []) or []
            ],
        }
    }
    report = getattr(exc, "report", None)
    if report is not None and hasattr(report, "to_dict"):
        out["error"]["report"] = report.to_dict()
    return out


def _parse_size(text: str) -> Tuple[int, int]:
    n, m = (int(x) for x in text.split(","))
    return n, m


def _execute_backend(out, args: argparse.Namespace) -> dict:
    """Execute the strict pipeline's fused program with the chosen backend.

    Dispatches through the :mod:`repro.core.backends` registry and returns
    a JSON-shaped record: backend, size, wall seconds and (for every
    backend but ``interp`` itself) whether the result matched the
    interpreter bit for bit.  A mismatch raises -- executing a wrong
    answer fast is not a feature.
    """
    import time as _time

    from repro.codegen.interp import ArrayStore, run_fused
    from repro.core.backends import execute_fused

    n, m = _parse_size(args.size)
    fp = out.fused
    if fp is None:
        raise FusionError("nothing to execute: the pipeline emitted no fused program")
    base = ArrayStore.for_program(out.nest, n, m, seed=0)
    record: dict = {"backend": args.backend, "n": n, "m": m}
    is_doall = out.fusion.is_doall
    schedule = out.fusion.schedule

    if args.backend == "interp":
        t0 = _time.perf_counter()
        execute_fused("interp", fp, n, m, store=base.copy())
        record["seconds"] = round(_time.perf_counter() - t0, 6)
        return record

    reference = run_fused(fp, n, m, store=base.copy(), mode="serial")
    got = base.copy()
    if args.backend == "auto":
        from repro.plan import Planner

        planner = Planner()
        plan = planner.plan_execution(
            fp, n, m, schedule=schedule, is_doall=is_doall,
            requested="auto", jobs=args.jobs,
        )
        record["resolved"] = plan.backend
        record["jobs"] = plan.jobs
        record["plan"] = plan.to_dict()
        if plan.backend in ("compiled", "numpy"):
            # compile outside the timed region, as for the static backends
            execute_fused(plan.backend, fp, 1, 1,
                          store=ArrayStore.for_program(out.nest, 1, 1, seed=0),
                          schedule=schedule, is_doall=is_doall)
        t0 = _time.perf_counter()
        execute_fused(plan.backend, fp, n, m, store=got,
                      schedule=schedule, is_doall=is_doall,
                      jobs=plan.jobs, tile=plan.tile)
        elapsed = _time.perf_counter() - t0
        record["seconds"] = round(elapsed, 6)
        planner.record(plan, elapsed)
    elif args.backend in ("compiled", "numpy"):
        # compile outside the timed region: the kernel is what recurs
        execute_fused(args.backend, fp, 1, 1,
                      store=ArrayStore.for_program(out.nest, 1, 1, seed=0),
                      schedule=schedule, is_doall=is_doall)
        t0 = _time.perf_counter()
        execute_fused(args.backend, fp, n, m, store=got,
                      schedule=schedule, is_doall=is_doall)
        record["seconds"] = round(_time.perf_counter() - t0, 6)
        if args.backend == "numpy":
            from repro.codegen.nplower import compile_numpy

            record["plan"] = compile_numpy(fp, schedule=schedule).plan
    else:  # parallel
        from repro.perf.parallel import ParallelExecutor

        with ParallelExecutor(args.jobs) as ex:
            t0 = _time.perf_counter()
            ex.run(
                fp, n, m, store=got,
                mode="doall" if is_doall else "hyperplane",
                schedule=None if is_doall else schedule,
            )
            record["seconds"] = round(_time.perf_counter() - t0, 6)
        record["jobs"] = ex.jobs
        record["mode"] = "doall" if is_doall else "hyperplane"
    if not reference.equal(got):  # pragma: no cover - correctness guard
        raise FusionError(
            f"{args.backend} backend diverged from the interpreter at {n}x{m}"
        )
    record["verified"] = "bit-identical to interpreter"
    return record


def _cmd_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.loopir.printer import format_program
    from repro.pipeline import fuse_program
    from repro.resilience.budget import Budget, BudgetExceededError
    from repro.resilience.pipeline import fuse_program_resilient

    if args.backend is not None and args.resilient:
        print("error: --backend is not available with --resilient", file=sys.stderr)
        return ExitCode.USAGE
    budget = Budget(
        deadline_ms=args.deadline_ms,
        max_nodes=args.max_nodes,
        max_edges=args.max_edges,
        max_relaxation_rounds=args.max_relaxation_rounds,
    )
    try:
        source = _read_source(args.file)
        if args.resilient:
            result = fuse_program_resilient(
                source, budget=budget, min_rung=args.min_rung
            )
            if args.format == "json":
                doc = result.to_dict()
                if args.no_emit:
                    doc.pop("emitted", None)
                print(_json.dumps(doc, indent=2))
                return ExitCode.OK
            print(result.report.describe())
            for note in result.notes:
                print(f"note: {note}")
            if not args.no_emit:
                print()
                print("! ===== emitted program =====")
                print(result.emitted_code())
            return ExitCode.OK
        out = fuse_program(source, budget=budget)
        execution = (
            _execute_backend(out, args) if args.backend is not None else None
        )
        if args.format == "json":
            doc = {
                "strategy": out.fusion.strategy.value,
                "parallelism": out.fusion.parallelism.value,
                "retiming": {
                    k: list(v) for k, v in out.fusion.retiming.as_dict().items()
                },
                "notes": list(out.notes),
            }
            if execution is not None:
                doc["execution"] = execution
            if not args.no_emit and out.fused is not None:
                doc["emitted"] = emit_fused_program(out.fused)
            print(_json.dumps(doc, indent=2))
            return ExitCode.OK
        print(out.fusion.summary())
        if execution is not None:
            parts = [f"backend={execution['backend']}"]
            if "resolved" in execution:
                parts.append(f"resolved={execution['resolved']}")
            if "jobs" in execution:
                parts.append(f"jobs={execution['jobs']}")
            parts.append(f"size={execution['n']}x{execution['m']}")
            parts.append(f"wall={execution['seconds'] * 1e3:.2f} ms")
            if "verified" in execution:
                parts.append(execution["verified"])
            print("execution   : " + ", ".join(parts))
            plan = execution.get("plan")
            if plan is not None and "rationale" in plan:
                print(f"plan        : [{plan['source']}] {plan['rationale']}")
        if not args.no_emit:
            print()
            print("! ===== emitted program =====")
            if out.fused is not None:
                print(emit_fused_program(out.fused))
            else:
                print(format_program(out.nest))
        return ExitCode.OK
    except (ParseError, ValidationError, FusionError, BudgetExceededError, OSError) as exc:
        if args.format == "json":
            print(_json.dumps(_run_error_dict(exc), indent=2))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return ExitCode.FAILURE


def _cmd_batch(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from repro.core.session import Session, SessionOptions
    from repro.resilience.budget import Budget

    try:
        programs = [
            (os.path.basename(path) or path, _read_source(path))
            for path in args.files
        ]
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.FAILURE
    budget = (
        Budget(deadline_ms=args.deadline_ms)
        if args.deadline_ms is not None
        else None
    )
    # when --trace installed an ambient tracer, hand it to the session so
    # per-program child tracers (and trace ids) are minted for the batch
    ambient = obs.current_tracer()
    session = Session(
        options=SessionOptions(min_rung=args.min_rung, jobs=args.jobs),
        budget=budget,
        tracer=ambient if getattr(ambient, "active", False) else None,
    )
    report = session.fuse_many(
        programs,
        jobs=args.jobs,
        strategy=args.strategy,
        resilient=args.resilient,
        timeout_ms=args.timeout_ms,
        pool=args.batch_pool,
    )
    if args.format == "json":
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return ExitCode.OK if report.ok else ExitCode.FAILURE


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeDaemon
    from repro.serve.service import ServeConfig

    config = ServeConfig(
        workers=args.workers,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
        max_attempts=args.max_attempts,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_ms=args.breaker_cooldown_ms,
        allow_faults=args.chaos,
        seed=args.seed,
        backend=args.backend,
        store_path=args.store,
    )
    daemon = ServeDaemon(config, host=args.host, port=args.port)
    print(f"repro-fuse serve: listening on {daemon.url} "
          f"({args.workers} workers"
          + (f", backend {args.backend}" if args.backend != "interp" else "")
          + (f", store {args.store}" if args.store else "")
          + (", CHAOS MODE" if args.chaos else "") + ")",
          file=sys.stderr, flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.shutdown()
    return ExitCode.OK


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve.loadgen import (
        LoadgenOptions,
        render_report_text,
        run_loadgen,
    )

    opts = LoadgenOptions(
        requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
        deadline_ms=args.deadline_ms,
        resilient_every=args.resilient_every,
        chaos_kills=args.chaos_kills,
        chaos_hangs=args.chaos_hangs,
        seed=args.seed,
        url=args.url,
        out=args.out,
        store_path=args.store,
        warm_passes=args.warm_passes,
        auto_every=args.auto_every,
    )
    report = run_loadgen(opts)
    if args.format == "json":
        print(_json.dumps(report, indent=2))
    else:
        print(render_report_text(report))
    return ExitCode.OK if not report["malformed"] else ExitCode.FAILURE


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.perf.bench import (
        parse_sizes,
        render_records_text,
        run_bench_suite,
        write_json,
    )

    try:
        n, m = _parse_size(args.size)
        jobs = args.jobs  # already a tuple via the _jobs_list argparse type
        sizes = parse_sizes(args.sizes) if args.sizes else None
    except ValueError as exc:
        print(
            f"bad --size/--sizes value ({exc}); "
            "expected N,M / N1xM1,N2xM2,...",
            file=sys.stderr,
        )
        return ExitCode.USAGE
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    try:
        doc = run_bench_suite(
            args.example,
            n=n,
            m=m,
            sizes=sizes,
            jobs=jobs,
            backends=backends,
            pool=args.pool,
            repeats=args.repeats,
            include_cache=not args.no_cache_bench,
            include_solver=not args.no_solver_bench,
            include_store=not args.no_store_bench,
            include_plan=not args.no_plan_bench,
            store_path=args.store,
        )
    except ValueError as exc:  # unknown example name etc.
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.FAILURE
    if args.output:
        write_json(doc, args.output)
    if args.format == "json":
        print(_json.dumps(doc, indent=2))
    else:
        print(render_records_text(doc))
    return ExitCode.OK


def _stats_workload(path: str, n: int, m: int) -> None:
    """Run the instrumented pipeline on ``path`` to populate the registry.

    Each stage runs twice where that exercises a cache (fusion memo, kernel
    cache), then the fused program executes once interpreted and once
    compiled -- so the stats report shows non-zero solver, cache and
    execution counters from one self-contained invocation.
    """
    from repro.codegen.interp import ArrayStore, run_fused
    from repro.codegen.pycompile import compile_fused
    from repro.core.backends import execute_fused
    from repro.pipeline import fuse_program

    source = _read_source(path)
    out = fuse_program(source)
    fuse_program(source)  # structural repeat -> fusion-cache hit
    if out.fused is None:
        return
    run_fused(out.fused, n, m, store=ArrayStore.for_program(out.nest, n, m, seed=0))
    compile_fused(out.fused)
    kernel = compile_fused(out.fused)  # repeat -> kernel-cache hit
    kernel(ArrayStore.for_program(out.nest, n, m, seed=0), n, m)
    # one planned execution so the report carries plan.* counters and a
    # recent-decision line (docs/PLANNING.md)
    execute_fused(
        "auto", out.fused, n, m,
        store=ArrayStore.for_program(out.nest, n, m, seed=0),
        schedule=out.fusion.schedule, is_doall=out.fusion.is_doall,
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    if args.input is not None:
        with open(args.input, "r", encoding="utf-8") as fh:
            doc = _json.load(fh)
    else:
        if args.file is not None:
            try:
                n, m = _parse_size(args.size)
            except ValueError:
                print(
                    f"bad --size value {args.size!r}; expected N,M",
                    file=sys.stderr,
                )
                return ExitCode.USAGE
            _stats_workload(args.file, n, m)
        # judge emptiness before the cache snapshot: the snapshot gauges
        # exist even in a process that did no instrumented work
        empty = obs.default_registry().empty
        obs.snapshot_caches()
        doc = obs.stats_document()
    if args.format == "json":
        print(_json.dumps(doc, indent=2))
    else:
        print(obs.render_stats_text(doc))
    if args.input is not None:
        metrics = doc.get("metrics", {})
        empty = not any(
            metrics.get(kind) for kind in ("counters", "gauges", "histograms")
        )
    return ExitCode.FAILURE if empty else ExitCode.OK


def _cmd_cache(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from repro.store import open_store

    path = args.store or os.environ.get("REPRO_FUSE_STORE")
    if not path:
        print(
            "error: no store given (use --store PATH or set REPRO_FUSE_STORE)",
            file=sys.stderr,
        )
        return ExitCode.USAGE
    store = open_store(path)
    if args.action == "stats":
        stats = store.stats()
        if args.format == "json":
            print(_json.dumps(stats.to_dict(), indent=2))
        else:
            kib = stats.size_bytes / 1024
            cap_mb = stats.max_bytes / (1024 * 1024)
            print(f"store   : {stats.path}")
            print(
                f"entries : {stats.entries} ({stats.fingerprints} "
                f"fingerprint(s)), file {kib:.1f} KiB, "
                f"schema v{stats.schema_version}"
            )
            print(f"caps    : {stats.max_entries} entries / {cap_mb:.1f} MiB")
            print(
                f"process : {stats.hits} hits / {stats.misses} misses / "
                f"{stats.puts} puts / {stats.evictions} evictions "
                f"(hit ratio {stats.hit_ratio:.2f})"
            )
            print(f"file    : {stats.stored_hits} stored hit(s) all-time")
            print(f"profiles: {stats.profile_rows} execution-profile row(s) "
                  "(planner tier; docs/PLANNING.md)")
            if stats.disabled:
                print("state   : DISABLED (unreadable or newer schema)")
        return ExitCode.FAILURE if stats.disabled else ExitCode.OK
    if args.action == "verify":
        report = store.verify(repair=args.repair)
        if args.format == "json":
            print(_json.dumps(report, indent=2))
        else:
            print(
                f"verify {path}: checked {report['checked']} row(s), "
                f"{len(report['corrupt'])} corrupt, "
                f"{report['repaired']} repaired -> "
                + ("CLEAN" if report["ok"] else "FAILED")
            )
            for skey, reason in report["corrupt"]:
                print(f"  corrupt: {skey} ({reason})")
        return ExitCode.OK if report["ok"] else ExitCode.FAILURE
    if args.action == "prune":
        max_bytes = (
            int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None
        )
        removed = store.prune(max_entries=args.max_entries, max_bytes=max_bytes)
        doc = {"removed": removed, "entries": store.stats().entries}
        if args.format == "json":
            print(_json.dumps(doc, indent=2))
        else:
            print(f"pruned {removed} row(s); {doc['entries']} remain")
        return ExitCode.OK
    # clear
    removed = store.clear()
    if args.format == "json":
        print(_json.dumps({"removed": removed}, indent=2))
    else:
        print(f"cleared {removed} row(s) from {path}")
    return ExitCode.OK


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.gallery import (
        figure2_mldg,
        figure8_mldg,
        figure14_mldg,
        floyd_steinberg_mldg,
        iir2d_mldg,
    )
    from repro.gallery.common import iir2d_code
    from repro.gallery.paper import figure2_code

    builders = {
        "fig2": (figure2_mldg, figure2_code()),
        "fig8": (figure8_mldg, None),
        "fig14": (figure14_mldg, None),
        "iir2d": (iir2d_mldg, iir2d_code()),
        "sor": (floyd_steinberg_mldg, None),
    }
    build, code = builders[args.name]
    g = build()
    print(f"demo: {_DEMOS[args.name]}")
    print()
    print(g.describe())
    print()
    result = fuse(g)
    nest = parse_program(code) if code else None
    return _report_fusion(g, result, nest, emit=True, verify=nest is not None)


def _dispatch(args: argparse.Namespace) -> int:
    # --store makes the persistent cache ambient for the invocation (and,
    # via REPRO_FUSE_STORE, for any worker process it spawns); serve and
    # loadgen additionally thread it through their explicit configs, and
    # `cache` addresses the file directly
    if getattr(args, "store", None) and args.command != "cache":
        from repro.store import set_default_store_path

        set_default_store_path(args.store)
    try:
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "fuse":
            return _cmd_fuse(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "report":
            from repro.experiments import full_report

            try:
                n, m = (int(x) for x in args.size.split(","))
            except ValueError:
                print(f"bad --size value {args.size!r}; expected N,M", file=sys.stderr)
                return ExitCode.USAGE
            print(full_report(n, m))
            return ExitCode.OK
    except (ParseError, ValidationError, FusionError, _BudgetExceededError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.FAILURE
    return ExitCode.USAGE


def _write_observability(args: argparse.Namespace, tracer) -> None:
    """Persist the trace and/or metrics files requested on the command line.

    Runs on every exit path (including handled errors), so a traced
    invocation that degrades or fails still leaves its partial trace.
    """
    trace_path = getattr(args, "trace", None)
    if tracer is not None and trace_path:
        obs.write_trace(tracer, trace_path, getattr(args, "trace_format", "json"))
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        import json as _json

        obs.snapshot_caches()
        doc = obs.stats_document()
        with open(metrics_path, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2)
            fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    tracer = obs.Tracer() if getattr(args, "trace", None) else None
    try:
        if tracer is not None:
            with obs.tracing(tracer):
                return _dispatch(args)
        return _dispatch(args)
    finally:
        _write_observability(args, tracer)


if __name__ == "__main__":
    sys.exit(main())
