"""Execution of original and fused loop nests over numpy array stores.

The interpreter is the ground truth for the semantic-equivalence
verification (DESIGN.md S11): the original program and its fused, retimed
form must produce bit-identical arrays from identical initial stores --
every statement instance computes the same expression over the same values,
so no floating-point tolerance is needed.

Execution modes for fused programs:

* ``"serial"``   -- fused iterations row-major, ascending; always valid for
  a legal fusion (all retimed vectors >= 0).
* ``"doall"``    -- rows ascending, but the iterations *within* each row run
  in a seeded random permutation.  Valid exactly when the fused loop is
  DOALL (Property 4.1); running a non-DOALL fusion this way is how the
  verification suite demonstrates the difference.
* ``"hyperplane"`` -- iterations grouped by ``t = s . (i, j)`` ascending,
  randomly permuted within each wavefront (Lemma 4.3).

A read of a cell that no statement ever writes returns the store's initial
(seeded random) content, mirroring how the paper's boundary reads like
``e[i-2][-1]`` pick up whatever the arrays held before the loop.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.codegen.fused import FusedProgram
from repro.loopir.ast_nodes import (
    ArrayRef,
    Assignment,
    BinOp,
    Const,
    Expr,
    LoopNest,
    UnaryOp,
)
from repro.vectors import IVec

__all__ = ["ArrayStore", "run_original", "run_fused", "ExecutionOrderError"]


class ExecutionOrderError(Exception):
    """An execution mode was requested that the fusion does not support."""


class ArrayStore:
    """Numpy-backed arrays with halo margins and logical indexing.

    Each array covers the logical index box its program can touch
    (iteration range extended by the extreme access offsets); cells outside
    every write are "halo" and keep their initial values.
    """

    def __init__(self, data: Dict[str, np.ndarray], origins: Dict[str, Tuple[int, int]]):
        self._data = data
        self._origins = origins

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #

    @classmethod
    def for_program(
        cls, nest: LoopNest, n: int, m: int, *, seed: int = 0
    ) -> "ArrayStore":
        """Allocate every array of ``nest`` with seeded random initial data."""
        bounds: Dict[str, Tuple[int, int, int, int]] = {}

        def touch(name: str, off: IVec) -> None:
            lo0, hi0, lo1, hi1 = bounds.get(name, (0, 0, 0, 0))
            bounds[name] = (
                min(lo0, off[0]),
                max(hi0, off[0]),
                min(lo1, off[1]),
                max(hi1, off[1]),
            )

        for loop in nest.loops:
            for stmt in loop.statements:
                touch(stmt.target.array, stmt.target.offset)
                for ref in stmt.reads():
                    touch(ref.array, ref.offset)

        rng = np.random.default_rng(seed)
        data: Dict[str, np.ndarray] = {}
        origins: Dict[str, Tuple[int, int]] = {}
        for name, (lo0, hi0, lo1, hi1) in sorted(bounds.items()):
            shape = (n + hi0 - lo0 + 1, m + hi1 - lo1 + 1)
            data[name] = rng.uniform(-1.0, 1.0, size=shape)
            origins[name] = (lo0, lo1)
        return cls(data, origins)

    def copy(self) -> "ArrayStore":
        return ArrayStore(
            {k: v.copy() for k, v in self._data.items()}, dict(self._origins)
        )

    # -------------------------------------------------------------- #
    # access
    # -------------------------------------------------------------- #

    def get(self, array: str, i: int, j: int) -> float:
        o0, o1 = self._origins[array]
        return float(self._data[array][i - o0, j - o1])

    def set(self, array: str, i: int, j: int, value: float) -> None:
        o0, o1 = self._origins[array]
        self._data[array][i - o0, j - o1] = value

    def arrays(self) -> Dict[str, np.ndarray]:
        """The raw storage (shared, not copied)."""
        return self._data

    def equal(self, other: "ArrayStore") -> bool:
        """Exact equality of every array (bit-identical values)."""
        if set(self._data) != set(other._data):
            return False
        return all(
            self._origins[k] == other._origins[k]
            and self._data[k].shape == other._data[k].shape
            and np.array_equal(self._data[k], other._data[k])
            for k in self._data
        )

    def max_abs_difference(self, other: "ArrayStore") -> float:
        """Largest absolute elementwise difference across common arrays."""
        worst = 0.0
        for k in self._data:
            if k in other._data and self._data[k].shape == other._data[k].shape:
                worst = max(worst, float(np.max(np.abs(self._data[k] - other._data[k]))))
            else:
                return float("inf")
        return worst


# ------------------------------------------------------------------ #
# expression evaluation
# ------------------------------------------------------------------ #


def _eval(expr: Expr, store: ArrayStore, i: int, j: int) -> float:
    if isinstance(expr, ArrayRef):
        return store.get(expr.array, i + expr.offset[0], j + expr.offset[1])
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, UnaryOp):
        return -_eval(expr.operand, store, i, j)
    if isinstance(expr, BinOp):
        left = _eval(expr.left, store, i, j)
        right = _eval(expr.right, store, i, j)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    raise TypeError(f"unknown expression node {expr!r}")


def _exec_statement(stmt: Assignment, store: ArrayStore, i: int, j: int) -> None:
    value = _eval(stmt.expr, store, i, j)
    t = stmt.target
    store.set(t.array, i + t.offset[0], j + t.offset[1], value)


# ------------------------------------------------------------------ #
# original program execution
# ------------------------------------------------------------------ #


def run_original(
    nest: LoopNest,
    n: int,
    m: int,
    *,
    store: Optional[ArrayStore] = None,
    seed: int = 0,
) -> ArrayStore:
    """Execute the Figure-1 loop sequence as written.

    ``store`` supplies initial array contents (it is mutated and returned);
    when omitted a seeded random store is allocated.
    """
    if store is None:
        store = ArrayStore.for_program(nest, n, m, seed=seed)
    obs.counter("exec.interp.runs").inc()
    with obs.trace_span("exec.interp.run_original", n=n, m=m):
        for i in range(n + 1):
            for loop in nest.loops:
                for j in range(m + 1):
                    for stmt in loop.statements:
                        _exec_statement(stmt, store, i, j)
    return store


# ------------------------------------------------------------------ #
# fused program execution
# ------------------------------------------------------------------ #


def _fused_instance(
    fp: FusedProgram, store: ArrayStore, i: int, j: int, n: int, m: int
) -> None:
    """Execute every in-bounds node of the fused body at fused ``(i, j)``."""
    for node in fp.body:
        oi, oj = i + node.shift[0], j + node.shift[1]
        if 0 <= oi <= n and 0 <= oj <= m:
            for stmt in node.statements:
                _exec_statement(stmt, store, oi, oj)


def run_fused(
    fp: FusedProgram,
    n: int,
    m: int,
    *,
    store: Optional[ArrayStore] = None,
    seed: int = 0,
    mode: str = "serial",
    schedule: Optional[IVec] = None,
    order_seed: int = 12345,
) -> ArrayStore:
    """Execute a fused program in the requested mode (see module docstring).

    ``schedule`` is required for ``mode="hyperplane"`` (the Lemma-4.3
    schedule vector ``s``); ``order_seed`` drives the random intra-phase
    permutations of the parallel modes.
    """
    if store is None:
        store = ArrayStore.for_program(fp.original, n, m, seed=seed)
    lo_i, hi_i = fp.full_outer_range(n)
    lo_j, hi_j = fp.full_inner_range(m)
    rng = random.Random(order_seed)

    obs.counter("exec.interp.runs").inc()
    with obs.trace_span("exec.interp.run_fused", mode=mode, n=n, m=m):
        if mode == "serial":
            for i in range(lo_i, hi_i + 1):
                for j in range(lo_j, hi_j + 1):
                    _fused_instance(fp, store, i, j, n, m)
            return store

        if mode == "doall":
            # The ascending base list is row-invariant; copying it per row feeds
            # shuffle the same input (and thus the same draws) as rebuilding it,
            # so results for a given order_seed are unchanged.
            base_js = list(range(lo_j, hi_j + 1))
            for i in range(lo_i, hi_i + 1):
                js = base_js.copy()
                rng.shuffle(js)
                for j in js:
                    _fused_instance(fp, store, i, j, n, m)
            return store

        if mode == "hyperplane":
            if schedule is None:
                raise ExecutionOrderError("hyperplane mode needs a schedule vector")
            phases: Dict[int, List[Tuple[int, int]]] = {}
            for i in range(lo_i, hi_i + 1):
                for j in range(lo_j, hi_j + 1):
                    phases.setdefault(
                        schedule[0] * i + schedule[1] * j, []
                    ).append((i, j))
            for t in sorted(phases):
                cells = phases[t]
                rng.shuffle(cells)
                for (i, j) in cells:
                    _fused_instance(fp, store, i, j, n, m)
            return store

    raise ExecutionOrderError(f"unknown execution mode {mode!r}")
