"""Emit Algorithm 5's wavefront schedule as skewed loop code.

The paper stops short of showing code for the hyperplane case ("the code
representing the resulting graph [requires] a detailed description beyond
the scope of this paper", Section 4.4).  This module supplies it: the
wavefront execution is exactly the fused nest under the unimodular
transformation whose first row is the schedule vector
(:func:`repro.transforms.wavefront_transform`), so we emit

.. code-block:: text

    do t = t_lo, t_hi                      ! wavefront level = s . (i, j)
      doall p = ceil-bound, floor-bound    ! all points on the front
        i = <linear in t, p>;  j = <linear in t, p>
        <fused body at original iteration (i, j) + r(node)>

The transformed iteration polytope of the fused rectangle
``[lo_i, hi_i] x [lo_j, hi_j]`` is a parallelogram, so the inner bounds are
max/min expressions of ``t``; the emitted text keeps them symbolic.  An
enumeration helper (:func:`wavefront_iterations`) yields the concrete
``(t, p, i, j)`` tuples and is tested to visit exactly the fused rectangle,
level by level -- the proof that the emitted nest is the wavefront.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.codegen.fused import FusedProgram
from repro.transforms.unimodular import wavefront_transform
from repro.vectors import IVec

__all__ = ["emit_wavefront_program", "wavefront_iterations"]


def _lin(coef_t: int, coef_p: int, const: int) -> str:
    """Readable text for ``coef_t * t + coef_p * p + const``."""
    parts: List[str] = []
    for coef, sym in ((coef_t, "t"), (coef_p, "p")):
        if coef == 0:
            continue
        if coef == 1:
            parts.append(sym if not parts else f"+ {sym}")
        elif coef == -1:
            parts.append(f"-{sym}" if not parts else f"- {sym}")
        else:
            text = f"{coef}*{sym}"
            parts.append(text if not parts else (f"+ {text}" if coef > 0 else f"- {abs(coef)}*{sym}"))
    if const or not parts:
        parts.append(
            str(const)
            if not parts
            else (f"+ {const}" if const > 0 else f"- {abs(const)}")
        )
    return " ".join(parts)


def wavefront_iterations(
    fp: FusedProgram, schedule: IVec, n: int, m: int
) -> Iterator[Tuple[int, List[Tuple[int, int, int]]]]:
    """Yield ``(t, [(p, i, j), ...])`` per wavefront level, in order.

    ``(i, j)`` ranges over the fused program's full iteration rectangle;
    ``t = s . (i, j)`` and ``p`` is the second transformed coordinate.
    """
    T = wavefront_transform(schedule)
    lo_i, hi_i = fp.full_outer_range(n)
    lo_j, hi_j = fp.full_inner_range(m)
    levels: dict = {}
    for i in range(lo_i, hi_i + 1):
        for j in range(lo_j, hi_j + 1):
            t, p = T.apply(IVec(i, j))
            levels.setdefault(t, []).append((p, i, j))
    for t in sorted(levels):
        yield t, sorted(levels[t])


def emit_wavefront_program(fp: FusedProgram, schedule: IVec) -> str:
    """Skewed source text realising the Lemma-4.3 wavefront execution."""
    T = wavefront_transform(schedule)
    inv = T.inverse()
    (a, b), (c, d) = inv.rows  # (i, j) = (a*t + b*p, c*t + d*p)
    nest = fp.original
    i_name, j_name = nest.index_names

    lines: List[str] = []
    lines.append(
        f"! wavefront execution: t = {schedule[0]}*{i_name} + {schedule[1]}*{j_name}; "
        f"T = {T}, T_inv = {inv}"
    )
    lines.append(
        f"! fused rectangle: {i_name} in [lo_i, hi_i], {j_name} in [lo_j, hi_j] "
        "(see core/full ranges)"
    )
    lines.append("do t = t_lo, t_hi")
    lines.append(
        f"  doall p over {{ p : lo_i <= {_lin(a, b, 0)} <= hi_i  and  "
        f"lo_j <= {_lin(c, d, 0)} <= hi_j }}"
    )
    lines.append(f"    {i_name} = {_lin(a, b, 0)}")
    lines.append(f"    {j_name} = {_lin(c, d, 0)}")
    for node in fp.body:
        s0, s1 = node.shift[0], node.shift[1]
        lines.append(
            f"    if 0 <= {i_name}+({s0}) <= {nest.outer_bound} and "
            f"0 <= {j_name}+({s1}) <= {nest.inner_bound}:"
        )
        for stmt in node.shifted_statements():
            lines.append(f"      {stmt}")
    lines.append("  end")
    lines.append("end")
    return "\n".join(lines)
