"""Construction of the fused, retimed program.

Retiming semantics (Section 2.3 and Figures 3b/12b): node ``u``'s statement
instance executed at fused iteration ``(i, j)`` performs original iteration
``(i, j) + r(u)``.  The fused loop's core ranges over the iterations where
*every* node has an original instance:

.. math::
   i \\in [\\max_u(-r_u[0]),\\; n - \\max_u r_u[0]], \\qquad
   j \\in [\\max_u(-r_u[1]),\\; m - \\max_u r_u[1]]

with prologue/epilogue (outer dimension) and per-iteration boundary code
(inner dimension) covering the rest -- exactly the structure of Figure 12b.

Body statement order: statements of different nodes joined by a retimed
``(0, ..., 0)`` dependence must keep producer-before-consumer order inside
the fused body.  The paper leaves this implicit (its examples satisfy it in
program order); in general a topological sort of the zero-vector dependence
relation is required, and a cycle there (possible -- the paper's Figure 14)
means no fused body order exists: :class:`DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.depend.extract import extract_mldg
from repro.graph.mldg import MLDG
from repro.loopir.ast_nodes import Assignment, LoopNest
from repro.retiming import Retiming
from repro.vectors import IVec

__all__ = ["FusedNode", "FusedProgram", "DeadlockError", "apply_fusion"]


class DeadlockError(Exception):
    """No valid fused body order exists (a zero-vector dependence cycle)."""

    def __init__(self, cycle: List[str]) -> None:
        super().__init__(
            "cannot order the fused body: zero-vector dependence cycle "
            + " -> ".join(cycle)
        )
        self.cycle = cycle


@dataclass(frozen=True)
class FusedNode:
    """One original DOALL loop inside the fused body."""

    label: str
    shift: IVec  # r(label)
    statements: Tuple[Assignment, ...]  # original (unshifted) statements

    def shifted_statements(self) -> Tuple[Assignment, ...]:
        """Statements rewritten for the fused indices (Figure 12b's text)."""
        return tuple(s.shifted(self.shift) for s in self.statements)


@dataclass(frozen=True)
class FusedProgram:
    """The fused loop: body order, shifts and symbolic bound information."""

    original: LoopNest
    retiming: Retiming
    body: Tuple[FusedNode, ...]  # dependence-respecting order
    mldg: MLDG  # extracted from `original`
    retimed_mldg: MLDG

    # -------------------------------------------------------------- #
    # concrete iteration geometry
    # -------------------------------------------------------------- #

    def core_outer_range(self, n: int) -> Tuple[int, int]:
        """Inclusive fused ``i`` range where every node is in-bounds."""
        shifts = [node.shift[0] for node in self.body]
        return (max(-s for s in shifts), n - max(shifts))

    def core_inner_range(self, m: int) -> Tuple[int, int]:
        """Inclusive fused ``j`` range where every node is in-bounds."""
        shifts = [node.shift[1] for node in self.body]
        return (max(-s for s in shifts), m - max(shifts))

    def full_outer_range(self, n: int) -> Tuple[int, int]:
        """Fused ``i`` values at which *some* node has an instance."""
        shifts = [node.shift[0] for node in self.body]
        return (min(-s for s in shifts), n - min(shifts))

    def full_inner_range(self, m: int) -> Tuple[int, int]:
        shifts = [node.shift[1] for node in self.body]
        return (min(-s for s in shifts), m - min(shifts))

    def node_in_bounds(self, node: FusedNode, i: int, j: int, n: int, m: int) -> bool:
        """Does node ``node`` have an original instance at fused ``(i, j)``?"""
        oi, oj = i + node.shift[0], j + node.shift[1]
        return 0 <= oi <= n and 0 <= oj <= m

    def synchronization_count(self, n: int, *, include_boundary: bool = False) -> int:
        """Barriers between parallel phases of the DOALL-fused execution.

        One phase per fused outer iteration; the count is phases minus one.
        The default counts only the core fused loop, matching the paper's
        ``n - 2`` for Figure 8 ("the prologue ... can be considered
        negligible"); ``include_boundary=True`` also counts the prologue and
        epilogue rows as phases.
        """
        lo, hi = (
            self.full_outer_range(n) if include_boundary else self.core_outer_range(n)
        )
        return max(hi - lo, 0)


def _zero_dependence_order(g_retimed: MLDG, program_order: List[str]) -> List[str]:
    """Topologically order nodes by retimed zero-vector dependencies."""
    zero = IVec.zero(g_retimed.dim)
    order_graph = nx.DiGraph()
    order_graph.add_nodes_from(program_order)
    for e in g_retimed.edges():
        if e.src != e.dst and zero in e.vectors:
            order_graph.add_edge(e.src, e.dst)
    try:
        pos = {name: k for k, name in enumerate(program_order)}
        return list(nx.lexicographical_topological_sort(order_graph, key=pos.get))
    except nx.NetworkXUnfeasible as exc:
        cycle_edges = nx.find_cycle(order_graph)
        raise DeadlockError([u for (u, _v) in cycle_edges]) from exc


def apply_fusion(
    nest: LoopNest,
    retiming: Retiming,
    *,
    mldg: Optional[MLDG] = None,
) -> FusedProgram:
    """Build the fused program for a loop nest under a retiming.

    ``mldg`` may be supplied when already extracted (it must match the
    nest).  Raises :class:`DeadlockError` when the retimed graph admits no
    fused body order, and ``ValueError`` when the retiming leaves a
    lexicographically negative dependence (fusion would be illegal --
    Theorem 3.1).
    """
    g = mldg if mldg is not None else extract_mldg(nest)
    gr = retiming.apply(g)

    zero = IVec.zero(g.dim)
    for e in gr.edges():
        if e.delta < zero:
            raise ValueError(
                f"retiming leaves {e.src}->{e.dst} at {e.delta} < 0: "
                "fusion would be illegal (run LLOFRA first)"
            )

    order = _zero_dependence_order(gr, list(nest.labels))
    body = tuple(
        FusedNode(
            label=label,
            shift=retiming[label],
            statements=nest.loop(label).statements,
        )
        for label in order
    )
    return FusedProgram(
        original=nest, retiming=retiming, body=body, mldg=g, retimed_mldg=gr
    )
