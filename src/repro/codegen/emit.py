"""Pretty-print a fused program in the paper's Figure-12b shape.

The emitted text has four parts:

1. **prologue** -- whole DOALL rows of leading original outer iterations
   that the shifted core loop no longer covers (Figure 12b's loops 10/20);
2. the **fused outer loop** over the core range, with per-iteration *inner
   boundary* statements before and after
3. the **fused DOALL inner loop** (loop 70 in the figure);
4. **epilogue** -- trailing whole rows (Figure 12b's loops 30/40).

The output documents the transformation (what a compiler would emit);
execution uses :mod:`repro.codegen.interp`, whose uniform guarded order is
dependence-correct for any legal retiming.
"""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.codegen.fused import FusedProgram
from repro.loopir.ast_nodes import ArrayRef, Assignment, BinOp, Const, Expr, UnaryOp

__all__ = ["emit_fused_program"]

#: An index base: a concrete integer, or (symbol, constant) like ("n", -1).
_Base = Union[int, Tuple[str, int]]


def _index_text(base: _Base, offset: int) -> str:
    if isinstance(base, int):
        return str(base + offset)
    sym, k = base
    total = k + offset
    if total == 0:
        return sym
    return f"{sym}+{total}" if total > 0 else f"{sym}{total}"


def _ref_text(ref: ArrayRef, i_base: _Base, j_base: _Base) -> str:
    return (
        f"{ref.array}[{_index_text(i_base, ref.offset[0])}]"
        f"[{_index_text(j_base, ref.offset[1])}]"
    )


def _expr_text(e: Expr, i_base: _Base, j_base: _Base) -> str:
    if isinstance(e, ArrayRef):
        return _ref_text(e, i_base, j_base)
    if isinstance(e, Const):
        return str(e)
    if isinstance(e, UnaryOp):
        return f"-{_expr_text(e.operand, i_base, j_base)}"
    if isinstance(e, BinOp):

        def wrap(sub: Expr) -> str:
            text = _expr_text(sub, i_base, j_base)
            if isinstance(sub, BinOp) and e.op in ("*", "/") and sub.op in ("+", "-"):
                return f"({text})"
            return text

        return f"{wrap(e.left)} {e.op} {wrap(e.right)}"
    raise TypeError(f"unknown expression node {e!r}")


def _stmt_text(stmt: Assignment, i_base: _Base, j_base: _Base) -> str:
    return (
        f"{_ref_text(stmt.target, i_base, j_base)} = "
        f"{_expr_text(stmt.expr, i_base, j_base)}"
    )


def emit_fused_program(fp: FusedProgram) -> str:
    """Figure-12b style source for the fused program.

    Boundary extents are decided from the (constant) retiming shifts; the
    core loop bounds stay symbolic in the nest's ``n`` and ``m``.
    """
    nest = fp.original
    i_name, j_name = nest.index_names
    n_sym, m_sym = nest.outer_bound, nest.inner_bound
    shifts0 = [node.shift[0] for node in fp.body]
    shifts1 = [node.shift[1] for node in fp.body]
    lo_i = max(-s for s in shifts0)
    hi_i_off = -max(shifts0)  # core hi_i = n + hi_i_off
    lo_j = max(-s for s in shifts1)
    hi_j_off = -max(shifts1)  # core hi_j = m + hi_j_off

    lines: List[str] = []

    # ---- prologue: leading whole rows in original execution order -------
    max_prologue = max((lo_i + node.shift[0] for node in fp.body), default=0)
    first = True
    for i_orig in range(0, max_prologue):
        for node in fp.body:
            if i_orig < lo_i + node.shift[0]:
                if first:
                    lines.append("! --- prologue ---")
                    first = False
                lines.append(
                    f"doall {j_name} = 0, {m_sym}"
                    f"        ! loop {node.label} at {i_name} = {i_orig}"
                )
                for stmt in node.statements:
                    lines.append(f"  {_stmt_text(stmt, i_orig, (j_name, 0))}")
                lines.append("end")

    # ---- fused outer loop ------------------------------------------------
    lines.append(f"do {i_name} = {lo_i}, {_index_text((n_sym, 0), hi_i_off)}")

    # inner boundary before the DOALL (original j' = 0 .. lo_j + shift1 - 1)
    for node in fp.body:
        for j_orig in range(0, lo_j + node.shift[1]):
            for stmt in node.shifted_statements():
                j_fused = j_orig - node.shift[1]
                lines.append(f"  {_stmt_text(stmt, (i_name, 0), j_fused)}")

    # fused DOALL core
    lines.append(f"  doall {j_name} = {lo_j}, {_index_text((m_sym, 0), hi_j_off)}")
    for node in fp.body:
        for stmt in node.shifted_statements():
            lines.append(f"    {_stmt_text(stmt, (i_name, 0), (j_name, 0))}")
    lines.append("  end")

    # inner boundary after the DOALL (original j' = hi_j + shift1 + 1 .. m)
    for node in fp.body:
        for k in range(hi_j_off + node.shift[1] + 1, 1):
            # original j' = m + k; fused j = m + k - shift1
            for stmt in node.shifted_statements():
                lines.append(
                    f"  {_stmt_text(stmt, (i_name, 0), (m_sym, k - node.shift[1]))}"
                )

    lines.append("end")

    # ---- epilogue: trailing whole rows -----------------------------------
    first = True
    min_start = min((hi_i_off + node.shift[0] + 1 for node in fp.body), default=1)
    for k in range(min_start, 1):
        for node in fp.body:
            if hi_i_off + node.shift[0] + 1 <= k:
                if first:
                    lines.append("! --- epilogue ---")
                    first = False
                i_text = _index_text((n_sym, 0), k)
                lines.append(
                    f"doall {j_name} = 0, {m_sym}"
                    f"        ! loop {node.label} at {i_name} = {i_text}"
                )
                for stmt in node.statements:
                    lines.append(f"  {_stmt_text(stmt, (n_sym, k), (j_name, 0))}")
                lines.append("end")

    return "\n".join(lines)
