"""Whole-array numpy lowering of fused programs.

The third execution backend: where :mod:`repro.codegen.pycompile` still
runs Python bytecode per fused *row*, this module lowers the fused body to
a staged sequence of whole-array numpy operations -- the fused DOALL loop
is exactly a vectorizable parfor, and the schedules the paper proves tell
us precisely how far each statement can be vectorized.

The lowering plans over the *statement-level* dependence graph of the
fused body (finer than the loop-level MLDG: one node per statement, one
edge per read of a written array, labelled with the fused-coordinate
dependence vector ``delta = (w + r(producer)) - (r_off + r(consumer))``).
Legality of the fusion (Theorem 3.1 plus the model validator's
well-ordered-reads rule) guarantees every ``delta >= (0, 0)``
lexicographically, which makes any flow-respecting stage order
bit-identical to the serial interpreter: arrays are single-assignment, so
a read either sees the unique written value (producer ordered first) or
an untouched halo/initial cell -- the same value the interpreter saw.

Stages are the strongly connected components of that graph, scheduled in
condensation topological order (ties broken by fused body order).  Each
stage lowers to the strongest form its internal dependences admit:

* **whole-array** -- a singleton SCC with no self-dependence becomes one
  numpy expression over the full original iteration rectangle.  Operating
  in *original* coordinates makes boundary peeling unnecessary: the
  retimed prologue/epilogue rows are exactly the rows where other nodes
  are out of bounds, and those belong to other stages.
* **slab** -- a recurrence SCC whose cross-row slack allows it becomes a
  blocked row sweep: per step, every member statement executes ``U``
  whole rows as one 2-D slice operation.  A statement-level *skew*
  (retiming of rows within the group -- the paper's own trick, one level
  down) tightens forward edges to zero so the backward edges keep all the
  slack, maximizing the slab height ``U`` = min over backward/self edges
  of ``delta_i + k(producer) - k(consumer)``.
* **wavefront** -- a non-DOALL SCC with a Lemma-4.3 schedule
  ``s = (s0, 1)`` becomes per-wavefront array ops: column slices when
  ``s0 == 0``, gather/compute/scatter over ``np.arange`` index vectors
  otherwise.  Every internal edge is checked ``s . delta >= 1`` before
  the form is used -- the schedule is re-verified, not trusted.
* **scalar** -- anything else (e.g. serial legal-only fusions with
  same-row backward dependences and no usable schedule) falls back to the
  compiled backend's scalar loop, restricted to the group's statements.
  The backend is therefore *total*: every legal fused program lowers.

Lowering decisions are observable: ``exec.numpy.lowered`` counts
statements emitted as array ops, ``exec.numpy.fallback`` counts scalar
statements, and wavefront loops open per-wavefront ``detail`` spans.
Generated kernels share the pycompile source-keyed cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro import obs
from repro.codegen.fused import FusedProgram
from repro.codegen.pycompile import (
    CompiledKernel,
    _bind_arrays,
    _Emitter,
    _expr_src,
    _finalize,
    _off,
    _origins_of,
    _scalar_stmt,
    _var,
)
from repro.codegen.interp import ArrayStore
from repro.loopir.ast_nodes import ArrayRef, Assignment
from repro.vectors import IVec

__all__ = [
    "FlatStatement",
    "LoweredStage",
    "LoweringPlan",
    "plan_lowering",
    "compile_numpy",
]


@dataclass(frozen=True)
class FlatStatement:
    """One statement of the fused body, flattened with its node context."""

    index: int  # position in the flattened fused body
    label: str  # fused node (original loop) label
    shift: IVec  # r(label): the node's retiming shift
    stmt: Assignment  # original (unshifted) statement


@dataclass(frozen=True)
class GroupEdge:
    """A statement-level dependence, producer -> consumer."""

    producer: int
    consumer: int
    delta: IVec  # fused-coordinate dependence vector, >= (0,0) lex

    @property
    def rows(self) -> int:
        return self.delta[0]


@dataclass
class LoweredStage:
    """One stage of the staged execution plan."""

    kind: str  # "whole-array" | "slab" | "wavefront" | "scalar"
    members: Tuple[int, ...]  # flattened indices, execution order
    slab: int = 1  # slab height U (kind == "slab")
    skew: Tuple[int, ...] = ()  # per-member row skew k (kind == "slab")

    def describe(self) -> str:
        extra = f" U={self.slab} k={list(self.skew)}" if self.kind == "slab" else ""
        return f"{self.kind}[{','.join(str(i) for i in self.members)}]{extra}"


@dataclass
class LoweringPlan:
    """The staged lowering of one fused program."""

    stages: List[LoweredStage]
    flat: List[FlatStatement]
    schedule: Optional[IVec] = None
    edges: List[GroupEdge] = field(default_factory=list)

    def count(self, kind: str) -> int:
        return sum(len(s.members) for s in self.stages if s.kind == kind)

    @property
    def lowered_statements(self) -> int:
        """Statements emitted as numpy array operations."""
        return sum(
            len(s.members) for s in self.stages if s.kind != "scalar"
        )

    @property
    def fallback_statements(self) -> int:
        """Statements that fell back to the scalar loop."""
        return self.count("scalar")

    def summary(self) -> Dict[str, object]:
        return {
            "stages": len(self.stages),
            "wholeArray": self.count("whole-array"),
            "slab": self.count("slab"),
            "wavefront": self.count("wavefront"),
            "scalar": self.count("scalar"),
            "slabHeights": [s.slab for s in self.stages if s.kind == "slab"],
        }

    def describe(self) -> str:
        return " ; ".join(s.describe() for s in self.stages)


# ------------------------------------------------------------------ #
# planning
# ------------------------------------------------------------------ #


def _flatten(fp: FusedProgram) -> List[FlatStatement]:
    flat: List[FlatStatement] = []
    for node in fp.body:
        for stmt in node.statements:
            flat.append(FlatStatement(len(flat), node.label, node.shift, stmt))
    return flat


def _statement_edges(flat: Sequence[FlatStatement]) -> List[GroupEdge]:
    """Producer -> consumer edges with fused-coordinate deltas.

    ``delta = (target_offset + shift_p) - (read_offset + shift_c)``: the
    fused-iteration distance from the consuming instance back to the
    producing one.  Legal fusion guarantees ``delta >= 0`` lex for every
    edge (loop-level vectors via Theorem 3.1, intra-node ones via the
    validator's LF104 well-ordered-reads rule).
    """
    writer_of: Dict[str, FlatStatement] = {}
    for fs in flat:
        writer_of[fs.stmt.target.array] = fs
    edges: List[GroupEdge] = []
    for consumer in flat:
        for ref in consumer.stmt.reads():
            producer = writer_of.get(ref.array)
            if producer is None:
                continue  # external input: constant under any order
            delta = (producer.stmt.target.offset + producer.shift) - (
                ref.offset + consumer.shift
            )
            zero = IVec.zero(len(delta))
            if delta < zero:  # pragma: no cover - guarded by apply_fusion
                raise ValueError(
                    f"statement dependence {producer.stmt.target.array}->"
                    f"{consumer.stmt.target.array} has negative delta {delta}; "
                    "the fusion is illegal"
                )
            edges.append(GroupEdge(producer.index, consumer.index, delta))
    return edges


def _classify_group(
    members: List[int],
    internal: List[GroupEdge],
    schedule: Optional[IVec],
) -> LoweredStage:
    """Pick the strongest lowering a recurrence group admits."""
    pos = {idx: k for k, idx in enumerate(members)}

    # -- slab: blocked row sweep with statement-level skew ------------- #
    # Tighten forward edges (k_c = min over forward in-edges of
    # k_p + delta_i) so every unit of cross-row slack lands on the
    # backward edges, whose minimum skewed weight is the slab height U.
    min_rows: Dict[Tuple[int, int], int] = {}
    for e in internal:
        key = (e.producer, e.consumer)
        min_rows[key] = min(min_rows.get(key, e.rows), e.rows)
    skew = {idx: 0 for idx in members}
    for idx in members:  # members are in body (topological-forward) order
        bounds = [
            skew[p] + rows
            for (p, c), rows in min_rows.items()
            if c == idx and pos[p] < pos[c]
        ]
        if bounds:
            skew[idx] = min(bounds)

    def slab_height(k: Dict[int, int]) -> Optional[int]:
        """min weight over backward/self edges, or None when unbounded."""
        weights = [
            rows + k[p] - k[c]
            for (p, c), rows in min_rows.items()
            if pos[p] >= pos[c]
        ]
        return min(weights) if weights else None

    zero_skew = {idx: 0 for idx in members}
    u_skew = slab_height(skew)
    u_zero = slab_height(zero_skew)
    best: Optional[Tuple[Dict[int, int], int]] = None
    for k, u in ((skew, u_skew), (zero_skew, u_zero)):
        if u is not None and u >= 1 and (best is None or u > best[1]):
            best = (k, u)
    if u_skew is None:  # pragma: no cover - an SCC always closes a cycle
        best = (zero_skew, 1)
    if best is not None:
        k, u = best
        return LoweredStage(
            kind="slab",
            members=tuple(members),
            slab=u,
            skew=tuple(k[idx] for idx in members),
        )

    # -- wavefront: Lemma-4.3 schedule, re-verified per edge ----------- #
    if schedule is not None and len(schedule) == 2 and schedule[1] == 1 \
            and schedule[0] >= 0:
        s0, s1 = schedule[0], schedule[1]
        ok = True
        for e in internal:
            if s0 * e.delta[0] + s1 * e.delta[1] >= 1:
                continue
            if e.delta == IVec.zero(len(e.delta)) and pos[e.producer] < pos[e.consumer]:
                continue  # same-iteration flow: statement order covers it
            ok = False
            break
        if ok:
            return LoweredStage(kind="wavefront", members=tuple(members))

    # -- scalar fallback ---------------------------------------------- #
    return LoweredStage(kind="scalar", members=tuple(members))


def plan_lowering(
    fp: FusedProgram, *, schedule: Optional[IVec] = None
) -> LoweringPlan:
    """Build the staged execution plan for a fused program.

    ``schedule`` is the fusion's Lemma-4.3 vector (when one exists); it is
    only used -- after per-edge re-verification -- for recurrence groups
    that cannot be lowered as row slabs.
    """
    flat = _flatten(fp)
    edges = _statement_edges(flat)

    g = nx.DiGraph()
    g.add_nodes_from(fs.index for fs in flat)
    for e in edges:
        g.add_edge(e.producer, e.consumer)
    cond = nx.condensation(g)
    order = nx.lexicographical_topological_sort(
        cond, key=lambda scc: min(cond.nodes[scc]["members"])
    )

    stages: List[LoweredStage] = []
    for scc in order:
        members = sorted(cond.nodes[scc]["members"])
        internal = [
            e for e in edges if e.producer in members and e.consumer in members
        ]
        if len(members) == 1 and not internal:
            stages.append(LoweredStage(kind="whole-array", members=tuple(members)))
        else:
            stages.append(_classify_group(members, internal, schedule))
    return LoweringPlan(stages=stages, flat=flat, schedule=schedule, edges=edges)


# ------------------------------------------------------------------ #
# emission helpers
# ------------------------------------------------------------------ #


def _box_ref(ref: ArrayRef, origins: Dict[str, tuple]) -> str:
    """A 2-D slice covering the full original rectangle for ``ref``."""
    o0, o1 = origins[ref.array]
    c0, c1 = ref.offset[0] - o0, ref.offset[1] - o1
    return (
        f"{_var(ref.array)}[{c0}:{_off('n', c0 + 1)}, "
        f"{c1}:{_off('m', c1 + 1)}]"
    )


def _slab_ref(ref: ArrayRef, origins: Dict[str, tuple]) -> str:
    """A 2-D slice over original rows ``[_a, _b]`` and the full row."""
    o0, o1 = origins[ref.array]
    c0, c1 = ref.offset[0] - o0, ref.offset[1] - o1
    return (
        f"{_var(ref.array)}[{_off('_a', c0)}:{_off('_b', c0 + 1)}, "
        f"{c1}:{_off('m', c1 + 1)}]"
    )


def _column_ref(ref: ArrayRef, shift: IVec, origins: Dict[str, tuple]) -> str:
    """A column slice at fused column ``_t`` (schedule ``(0, 1)``)."""
    o0, o1 = origins[ref.array]
    c0 = ref.offset[0] - o0
    c1 = shift[1] + ref.offset[1] - o1
    return (
        f"{_var(ref.array)}[{c0}:{_off('n', c0 + 1)}, {_off('_t', c1)}]"
    )


def _gather_ref(ref: ArrayRef, shift: IVec, origins: Dict[str, tuple]) -> str:
    """A fancy-indexed gather over the wavefront index vectors."""
    o0, o1 = origins[ref.array]
    c0 = shift[0] + ref.offset[0] - o0
    c1 = shift[1] + ref.offset[1] - o1
    return f"{_var(ref.array)}[{_off('_iv', c0)}, {_off('_jv', c1)}]"


def _assign(em: _Emitter, stmt: Assignment, ref_fn) -> None:
    em.emit(f"{ref_fn(stmt.target)} = "
            f"{_expr_src(stmt.expr, ref_fn)}")


# ------------------------------------------------------------------ #
# stage emission
# ------------------------------------------------------------------ #


def _emit_whole_array(
    em: _Emitter, fs: FlatStatement, origins: Dict[str, tuple]
) -> None:
    em.emit(f"# stage: whole-array {fs.label}/{fs.stmt.target.array}")
    _assign(em, fs.stmt, lambda r: _box_ref(r, origins))


def _emit_slab(
    em: _Emitter,
    stage: LoweredStage,
    flat: Sequence[FlatStatement],
    origins: Dict[str, tuple],
) -> None:
    """Blocked row sweep: per step, each member runs ``U`` rows at once.

    Statement ``s`` (shift ``sh``, skew ``k``) executes its original rows
    ``[_t + k + sh0, _t + U - 1 + k + sh0]`` clamped to ``[0, n]`` at step
    ``_t`` -- the clamping *is* the prologue/epilogue handling.
    """
    members = [flat[i] for i in stage.members]
    u = stage.slab
    # step range: statement s covers steps [lo_s - k_s, hi_s - k_s] where
    # its fused rows are [lo_s, hi_s] = [-sh0, n - sh0]
    starts = [
        -fs.shift[0] - k for fs, k in zip(members, stage.skew)
    ]
    t_lo = min(starts)
    t_hi_off = max(-fs.shift[0] - k for fs, k in zip(members, stage.skew))
    em.emit(
        f"# stage: slab U={u} "
        f"{{{', '.join(fs.stmt.target.array for fs in members)}}}"
    )
    em.emit(f"for _t in range({t_lo}, n + ({t_hi_off}) + 1, {u}):")
    em.indent += 1
    for fs, k in zip(members, stage.skew):
        base = k + fs.shift[0]
        em.emit(f"_a = max(0, {_off('_t', base)})")
        em.emit(f"_b = min(n, {_off('_t', base + u - 1)})")
        em.emit("if _a <= _b:")
        em.indent += 1
        _assign(em, fs.stmt, lambda r: _slab_ref(r, origins))
        em.indent -= 1
    em.indent -= 1


def _emit_wavefront(
    em: _Emitter,
    stage: LoweredStage,
    flat: Sequence[FlatStatement],
    schedule: IVec,
    origins: Dict[str, tuple],
) -> None:
    """Per-wavefront array ops along ``s . (i, j) = t`` (fused coords)."""
    members = [flat[i] for i in stage.members]
    s0 = schedule[0]
    names = ", ".join(fs.stmt.target.array for fs in members)
    em.emit(f"# stage: wavefront s={tuple(schedule)} {{{names}}}")
    if s0 == 0:
        # wavefronts are fused columns: contiguous column slices
        lo_t = min(-fs.shift[1] for fs in members)
        hi_off = max(-fs.shift[1] for fs in members)
        em.emit(f"for _t in range({lo_t}, m + ({hi_off}) + 1):")
        em.indent += 1
        em.emit('with _obs.trace_span("exec.numpy.wavefront", detail=True, t=_t):')
        em.indent += 1
        for fs in members:
            sh1 = fs.shift[1]
            em.emit(f"if {-sh1} <= _t <= m - ({sh1}):")
            em.indent += 1
            _assign(em, fs.stmt, lambda r, _fs=fs: _column_ref(r, _fs.shift, origins))
            em.indent -= 1
        em.indent -= 2
        return
    # general (s0 >= 1, s1 == 1): gather/compute/scatter per statement
    t_los = [s0 * (-fs.shift[0]) - fs.shift[1] for fs in members]
    t_lo = min(t_los)
    t_hi_off = max(-s0 * fs.shift[0] - fs.shift[1] for fs in members)
    em.emit(f"for _t in range({t_lo}, {s0} * n + m + ({t_hi_off}) + 1):")
    em.indent += 1
    em.emit('with _obs.trace_span("exec.numpy.wavefront", detail=True, t=_t):')
    em.indent += 1
    for fs in members:
        sh0, sh1 = fs.shift[0], fs.shift[1]
        # fused i range on this wavefront: i in [-sh0, n - sh0] and
        # j = _t - s0*i in [-sh1, m - sh1]
        em.emit(
            f"_ilo = max({-sh0}, -(({_off('m', -sh1)} - _t) // {s0}))"
        )
        em.emit(f"_ihi = min(n - ({sh0}), (_t + ({sh1})) // {s0})")
        em.emit("if _ilo <= _ihi:")
        em.indent += 1
        em.emit("_iv = _np.arange(_ilo, _ihi + 1)")
        em.emit(f"_jv = _t - {s0} * _iv")
        _assign(em, fs.stmt, lambda r, _fs=fs: _gather_ref(r, _fs.shift, origins))
        em.indent -= 1
    em.indent -= 2


def _emit_scalar(
    em: _Emitter,
    stage: LoweredStage,
    flat: Sequence[FlatStatement],
    origins: Dict[str, tuple],
) -> None:
    """The compiled backend's scalar loop, restricted to the group."""
    members = [flat[i] for i in stage.members]
    names = ", ".join(fs.stmt.target.array for fs in members)
    em.emit(f"# stage: scalar fallback {{{names}}}")
    lo_i = min(-fs.shift[0] for fs in members)
    hi_i_off = max(-fs.shift[0] for fs in members)
    lo_j = min(-fs.shift[1] for fs in members)
    hi_j_off = max(-fs.shift[1] for fs in members)
    em.emit(f"for _fi in range({lo_i}, n + ({hi_i_off}) + 1):")
    em.indent += 1
    em.emit(f"for _fj in range({lo_j}, m + ({hi_j_off}) + 1):")
    em.indent += 1
    for fs in members:
        s0, s1 = fs.shift[0], fs.shift[1]
        em.emit(f"if 0 <= _fi + ({s0}) <= n and 0 <= _fj + ({s1}) <= m:")
        em.indent += 1
        em.emit(_scalar_stmt(fs.stmt, f"_fi+({s0})", f"_fj+({s1})", origins))
        em.indent -= 1
    em.indent -= 2


# ------------------------------------------------------------------ #
# entry point
# ------------------------------------------------------------------ #


def compile_numpy(
    fp: FusedProgram, *, schedule: Optional[IVec] = None
) -> CompiledKernel:
    """Compile a fused program to a staged whole-array numpy kernel.

    Returns a cached ``kernel(store, n, m)`` callable (the pycompile
    source-keyed cache; identical source means identical behaviour).  The
    kernel carries ``.source`` and ``.plan`` (the
    :meth:`LoweringPlan.summary` dict) for inspection.  The result is
    bit-identical to the serial interpreter for every legal fusion -- see
    the module docstring for why, and the test suite for proof.
    """
    reg = obs.default_registry()
    with obs.trace_span("codegen.lower_numpy"):
        plan = plan_lowering(fp, schedule=schedule)
        probe = ArrayStore.for_program(fp.original, 1, 1)
        origins = _origins_of(probe)

        em = _Emitter()
        em.emit("import numpy as _np")
        em.emit("from repro import obs as _obs")
        em.emit("")
        em.emit("def kernel(store, n, m):")
        em.indent += 1
        em.emit('_obs.counter("exec.numpy.runs").inc()')
        _bind_arrays(em, fp.original.all_arrays())
        for stage in plan.stages:
            if stage.kind == "whole-array":
                _emit_whole_array(em, plan.flat[stage.members[0]], origins)
            elif stage.kind == "slab":
                _emit_slab(em, stage, plan.flat, origins)
            elif stage.kind == "wavefront":
                assert plan.schedule is not None
                _emit_wavefront(em, stage, plan.flat, plan.schedule, origins)
            else:
                _emit_scalar(em, stage, plan.flat, origins)
        em.indent -= 1

    reg.counter("exec.numpy.lowered").inc(plan.lowered_statements)
    if plan.fallback_statements:
        reg.counter("exec.numpy.fallback").inc(plan.fallback_statements)
    kernel = _finalize(em, origins)
    kernel.plan = plan.summary()  # type: ignore[attr-defined]
    return kernel
