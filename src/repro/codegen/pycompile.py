"""Compile loop nests and fused programs to Python/numpy source.

A second execution backend, independent of the tree-walking interpreter in
:mod:`repro.codegen.interp`:

* :func:`compile_original` -- the Figure-1 loop sequence with every DOALL
  row vectorised into numpy slice expressions (bit-identical to scalar
  execution: the same IEEE operations elementwise);
* :func:`compile_fused` -- the fused program, vectorised per row when the
  fusion is DOALL, scalar row-major otherwise.

Both return callables ``kernel(store, n, m)`` operating in place on an
:class:`~repro.codegen.interp.ArrayStore`.  The generated source is kept on
the callable as ``.source`` for inspection, and the test suite checks the
compiled backends against the interpreter bit-for-bit -- two independent
implementations of the same semantics guarding each other.

Row vectorisation is valid because the program model guarantees no
statement's row reads another iteration of the *same* row of any statement
executed later in that row sweep: original loops are DOALL (validator),
and a DOALL-fused body has no same-row cross-iteration dependencies at all
(Property 4.1); executing statement-by-statement over whole rows respects
the remaining intra-iteration ``(0,0)`` ordering exactly.

``exec``/``compile`` dominate the cost of building a kernel, so finished
kernels are cached keyed on their generated source: recompiling the same
program (or any program that generates identical code) returns the cached
callable.  :func:`kernel_cache_info` / :func:`clear_kernel_cache` expose
and reset the cache; each kernel also carries ``.cache_info()``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro import obs
from repro.codegen.fused import FusedProgram
from repro.codegen.interp import ArrayStore
from repro.core.context import current_session
from repro.loopir.ast_nodes import ArrayRef, Assignment, BinOp, Const, Expr, LoopNest, UnaryOp
from repro.perf.memo import CacheInfo, MemoCache
from repro.retiming.verify import is_doall_after_fusion

__all__ = [
    "compile_original",
    "compile_fused",
    "CompiledKernel",
    "kernel_cache",
    "kernel_cache_info",
    "clear_kernel_cache",
]

CompiledKernel = Callable[[ArrayStore, int, int], None]

# Compiled kernels keyed on their full generated source.  The source string
# is a complete semantic key: identical code means identical behaviour, and
# the kernels close over nothing program-specific (arrays arrive via the
# store argument), so sharing one callable across programs is safe.
_KERNEL_CACHE = MemoCache(maxsize=128)


def kernel_cache() -> MemoCache:
    """The compiled-kernel cache.

    Session-scoped when the active :class:`repro.core.Session` carries a
    private kernel cache; the process-wide default otherwise.
    """
    session = current_session()
    if session is not None and session.caches.kernels is not None:
        return session.caches.kernels
    return _KERNEL_CACHE


def kernel_cache_info() -> CacheInfo:
    """Hit/miss/eviction statistics of the compiled-kernel cache."""
    return kernel_cache().cache_info()


def clear_kernel_cache() -> None:
    """Drop all cached kernels and reset the statistics (session-scoped
    cache when one is active, plus the process-wide default)."""
    kernel_cache().clear()
    _KERNEL_CACHE.clear()


def _off(base: str, k: int) -> str:
    """Python index text ``base + k`` with the constant folded."""
    if k == 0:
        return base
    return f"{base}+{k}" if k > 0 else f"{base}{k}"


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines)


def _var(name: str) -> str:
    return f"_arr_{name}"


def _scalar_ref(ref: ArrayRef, i_expr: str, j_expr: str, origins: Dict[str, tuple]) -> str:
    o0, o1 = origins[ref.array]
    return (
        f"{_var(ref.array)}[{_off(i_expr, ref.offset[0] - o0)}, "
        f"{_off(j_expr, ref.offset[1] - o1)}]"
    )


def _row_ref(ref: ArrayRef, i_expr: str, lo: str, hi: str, origins: Dict[str, tuple]) -> str:
    """A numpy slice covering one row of accesses for j in [lo, hi]."""
    o0, o1 = origins[ref.array]
    k = ref.offset[1] - o1
    return (
        f"{_var(ref.array)}[{_off(i_expr, ref.offset[0] - o0)}, "
        f"{_off(lo, k)}:{_off(hi, k + 1)}]"
    )


def _expr_src(e: Expr, ref_fn) -> str:
    if isinstance(e, ArrayRef):
        return ref_fn(e)
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, UnaryOp):
        return f"(-{_expr_src(e.operand, ref_fn)})"
    if isinstance(e, BinOp):
        return f"({_expr_src(e.left, ref_fn)} {e.op} {_expr_src(e.right, ref_fn)})"
    raise TypeError(f"unknown expression node {e!r}")


def _scalar_stmt(stmt: Assignment, i_expr: str, j_expr: str, origins) -> str:
    target = _scalar_ref(stmt.target, i_expr, j_expr, origins)
    value = _expr_src(stmt.expr, lambda r: _scalar_ref(r, i_expr, j_expr, origins))
    return f"{target} = {value}"


def _row_stmt(stmt: Assignment, i_expr: str, lo: str, hi: str, origins) -> str:
    target = _row_ref(stmt.target, i_expr, lo, hi, origins)
    value = _expr_src(stmt.expr, lambda r: _row_ref(r, i_expr, lo, hi, origins))
    return f"{target} = {value}"


def _bind_arrays(em: _Emitter, names) -> None:
    em.emit("_data = store.arrays()")
    for name in sorted(names):
        em.emit(f"{_var(name)} = _data[{name!r}]")


def _origins_of(store_probe: ArrayStore) -> Dict[str, tuple]:
    # ArrayStore keeps origins private by convention; reach through the
    # module-level contract (stable across a program's stores because they
    # are derived from the program's access offsets alone).
    return dict(store_probe._origins)  # noqa: SLF001 - deliberate internal use


def _finalize(em: _Emitter, names: Dict[str, tuple]) -> CompiledKernel:
    source = em.source()
    reg = obs.default_registry()
    cache = kernel_cache()
    cached = cache.get(source)
    if cached is not None:
        reg.counter("kernel.cache.hits").inc()
        return cached
    reg.counter("kernel.cache.misses").inc()
    with obs.trace_span("codegen.compile_kernel", source_lines=source.count("\n") + 1):
        namespace: Dict[str, object] = {}
        exec(compile(source, "<repro.codegen.pycompile>", "exec"), namespace)
        kernel = namespace["kernel"]
        kernel.source = source  # type: ignore[attr-defined]
        kernel.cache_info = kernel_cache_info  # type: ignore[attr-defined]
        cache.put(source, kernel)
    return kernel  # type: ignore[return-value]


def compile_original(nest: LoopNest) -> CompiledKernel:
    """Compile the original loop sequence, rows vectorised with numpy."""
    probe = ArrayStore.for_program(nest, 1, 1)
    origins = _origins_of(probe)
    em = _Emitter()
    em.emit("def kernel(store, n, m):")
    em.indent += 1
    _bind_arrays(em, nest.all_arrays())
    em.emit("for i in range(0, n + 1):")
    em.indent += 1
    for loop in nest.loops:
        for stmt in loop.statements:
            em.emit(_row_stmt(stmt, "i", "0", "m", origins))
    em.indent -= 1
    em.indent -= 1
    return _finalize(em, origins)


def compile_fused(fp: FusedProgram) -> CompiledKernel:
    """Compile the fused program.

    DOALL fusions vectorise each node's whole original row (valid: no
    same-row cross-iteration dependencies exist, and statement-major order
    preserves the intra-iteration ``(0,0)`` ordering because the body is
    topologically sorted).  Non-DOALL fusions must interleave the body
    across the row -- consumer iterations may need producer values from
    *later body nodes at smaller j* -- so they run scalar, j-major, exactly
    like the interpreter's serial mode.
    """
    probe = ArrayStore.for_program(fp.original, 1, 1)
    origins = _origins_of(probe)
    doall = is_doall_after_fusion(fp.retimed_mldg)

    em = _Emitter()
    em.emit("def kernel(store, n, m):")
    em.indent += 1
    _bind_arrays(em, fp.original.all_arrays())

    shifts0 = [node.shift[0] for node in fp.body]
    shifts1 = [node.shift[1] for node in fp.body]
    lo_i = min(-s for s in shifts0)
    em.emit(f"hi_i = n - ({min(shifts0)})")
    em.emit(f"for i in range({lo_i}, hi_i + 1):")
    em.indent += 1
    if doall:
        for node in fp.body:
            s0 = node.shift[0]
            em.emit(f"if 0 <= i + ({s0}) <= n:")
            em.indent += 1
            for stmt in node.statements:
                em.emit(_row_stmt(stmt, f"i+({s0})", "0", "m", origins))
            em.indent -= 1
    else:
        lo_j = min(-s for s in shifts1)
        em.emit(f"hi_j = m - ({min(shifts1)})")
        em.emit(f"for j in range({lo_j}, hi_j + 1):")
        em.indent += 1
        for node in fp.body:
            s0, s1 = node.shift[0], node.shift[1]
            em.emit(f"if 0 <= i + ({s0}) <= n and 0 <= j + ({s1}) <= m:")
            em.indent += 1
            for stmt in node.statements:
                em.emit(_scalar_stmt(stmt, f"i+({s0})", f"j+({s1})", origins))
            em.indent -= 1
        em.indent -= 1
    em.indent -= 1
    em.indent -= 1
    return _finalize(em, origins)
