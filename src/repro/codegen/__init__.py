"""Retiming-aware code generation and execution.

Turns a loop nest plus a fusion result into:

* a :class:`~repro.codegen.fused.FusedProgram` -- the fused single loop with
  per-node retiming shifts and a dependence-respecting body order;
* pretty-printed transformed source in the shape of the paper's Figures 3b,
  6b and 12b (prologue / per-iteration boundary code / fused DOALL loop /
  epilogue) via :mod:`~repro.codegen.emit`;
* actual execution over numpy-backed array stores via
  :mod:`~repro.codegen.interp`, in serial, DOALL (randomised row order) or
  hyperplane (wavefront) mode -- the basis of the semantic-equivalence
  verification in :mod:`repro.verify`.
"""

from repro.codegen.fused import DeadlockError, FusedProgram, FusedNode, apply_fusion
from repro.codegen.emit import emit_fused_program
from repro.codegen.interp import (
    ArrayStore,
    ExecutionOrderError,
    run_fused,
    run_original,
)
from repro.codegen.nplower import LoweringPlan, compile_numpy, plan_lowering
from repro.codegen.pycompile import CompiledKernel, compile_fused, compile_original
from repro.codegen.wavefront import emit_wavefront_program, wavefront_iterations

__all__ = [
    "compile_original",
    "compile_fused",
    "compile_numpy",
    "plan_lowering",
    "LoweringPlan",
    "CompiledKernel",
    "emit_wavefront_program",
    "wavefront_iterations",
    "FusedProgram",
    "FusedNode",
    "DeadlockError",
    "apply_fusion",
    "emit_fused_program",
    "ArrayStore",
    "run_original",
    "run_fused",
    "ExecutionOrderError",
]
