"""The execution planner: one place that decides *how* a fused program runs.

Before this module, "how" was scattered: ``SessionOptions`` hard-coded
``jobs=4``, :class:`~repro.perf.parallel.ParallelExecutor` hard-coded
``tile=256``, ``repro-fuse run`` resolved ``--backend`` itself, and serve
stamped ``ServeConfig.backend`` onto requests.  The :class:`Planner`
unifies them behind one precedence rule:

    **explicit > session > profile > model**

An explicit per-call (or per-request) backend always wins.  A session
configured with a concrete backend wins next.  Only ``"auto"`` reaches
the planner proper, which prefers *measured* timings -- profile rows for
this ``(structural_hash, size bucket, env fingerprint)`` key, persisted
in the L2 store's ``profiles`` table (:mod:`repro.plan.profile`) -- and
falls back to the static cost model (:mod:`repro.plan.model`) on a cold
key.

Two invariants:

* **Bit-identity.**  The planner picks among backends that are already
  proven bit-identical to the interpreter; it chooses *how* to run,
  never *what* is computed.  Feedback is timing-only.
* **Determinism.**  A decision is a pure function of (shape, profile
  rows, fingerprint, cpu count).  The wall clock is read only *after*
  execution, to record feedback -- never inside ``plan_execution``.
  Ties break by backend registry order, then ascending jobs.

Every decision emits a ``plan.select`` trace span and ``plan.*``
counters, and is kept in a small ring visible through
``repro-fuse stats`` and the daemon's ``/statz``.  Feedback recording
respects :func:`repro.perf.memo.memoization_applicable` -- the same gate
as both cache tiers -- so probe runs, fault-injected runs and
``REPRO_FUSE_MEMO=0`` never pollute the profile.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from repro import obs
from repro.plan.model import (
    CostEstimate,
    ShapeInfo,
    choose_tile,
    estimate_costs,
    job_candidates,
    shape_info,
)
from repro.plan.profile import ProfileRow, memory_profiles, size_bucket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.codegen.fused import FusedProgram
    from repro.resilience.budget import Budget
    from repro.vectors import IVec

__all__ = ["ExecutionPlan", "Planner", "default_planner", "plan_snapshot"]

#: Decision provenance values, strongest-precedence first.
PLAN_SOURCES = ("explicit", "session", "profile", "model")


@dataclass(frozen=True)
class ExecutionPlan:
    """One resolved execution decision: backend, jobs, tile -- and why."""

    backend: str
    jobs: int
    tile: int
    source: str  # one of PLAN_SOURCES
    rationale: str
    skey: Optional[str] = None
    bucket: Optional[str] = None
    fingerprint: Optional[str] = None
    est_s: Optional[float] = None
    shape: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "tile": self.tile,
            "source": self.source,
            "rationale": self.rationale,
            "skey": self.skey,
            "bucket": self.bucket,
            "fingerprint": self.fingerprint,
            "estS": self.est_s,
        }

    def describe(self) -> str:
        est = f", est {self.est_s * 1e3:.3f} ms" if self.est_s is not None else ""
        return (
            f"{self.backend} jobs={self.jobs} [{self.source}{est}] "
            f"-- {self.rationale}"
        )


# a small process-wide ring of recent decisions for stats/statz surfacing
_RECENT: Deque[Dict[str, Any]] = deque(maxlen=8)
_RECENT_LOCK = threading.Lock()


def plan_snapshot() -> Dict[str, Any]:
    """Recent planner decisions (newest last) for stats documents."""
    with _RECENT_LOCK:
        return {"recent": list(_RECENT)}


def _note_decision(plan: ExecutionPlan) -> None:
    with _RECENT_LOCK:
        _RECENT.append(plan.to_dict())


class Planner:
    """Produces :class:`ExecutionPlan` objects and records feedback.

    ``store=None`` resolves the active L2 store at decision time (the
    session's store under ``Session.activate``, else the
    ``REPRO_FUSE_STORE`` default); with no store at all, profile rows
    live in the bounded in-process table so warmth still works.
    """

    def __init__(self, store: Optional[Any] = None) -> None:
        self.store = store

    # -------------------------------------------------------------- #
    # profile-tier plumbing
    # -------------------------------------------------------------- #

    def _profiles(self) -> Any:
        if self.store is not None and not getattr(self.store, "disabled", False):
            return self.store
        from repro.store import active_store

        store = active_store()
        if store is not None and not store.disabled:
            return store
        return memory_profiles()

    # -------------------------------------------------------------- #
    # planning
    # -------------------------------------------------------------- #

    def plan_execution(
        self,
        fp: "FusedProgram",
        n: int,
        m: int,
        *,
        schedule: Optional["IVec"] = None,
        is_doall: bool = True,
        requested: Optional[str] = None,
        session_backend: Optional[str] = None,
        jobs: Optional[int] = None,
        skey: Optional[str] = None,
    ) -> ExecutionPlan:
        """Resolve how to execute ``fp`` on an ``(n, m)`` space.

        ``requested`` is the per-call/per-request backend (strongest),
        ``session_backend`` the session default; either being ``"auto"``
        (or absent) delegates to profile-then-model.  ``jobs`` constrains
        the parallel backend's worker count when given.  Pure function of
        its inputs plus the profile rows -- no clock reads.
        """
        from repro.core.backends import backend_names

        shape = shape_info(fp, n, m, schedule=schedule, is_doall=is_doall)
        bucket = size_bucket(n, m)
        if skey is None:
            skey = self._structural_key(fp)
        fingerprint = self._fingerprint()
        reg = obs.default_registry()

        with obs.trace_span(
            "plan.select", skey=skey, bucket=bucket, n=n, m=m
        ) as sp:
            if requested is not None and requested != "auto":
                plan = self._fixed_plan(
                    requested, "explicit", "per-call backend wins over the planner",
                    shape, jobs, skey, bucket, fingerprint,
                )
            elif session_backend is not None and session_backend != "auto":
                plan = self._fixed_plan(
                    session_backend, "session",
                    "session options pin the backend",
                    shape, jobs, skey, bucket, fingerprint,
                )
            else:
                plan = self._auto_plan(shape, jobs, skey, bucket, fingerprint)
            sp.set(
                backend=plan.backend,
                jobs=plan.jobs,
                tile=plan.tile,
                source=plan.source,
                estMs=(
                    round(plan.est_s * 1e3, 6) if plan.est_s is not None else None
                ),
            )
        reg.counter("plan.selects").inc()
        reg.counter(f"plan.source.{plan.source}").inc()
        if plan.backend in backend_names():
            reg.counter(f"plan.backend.{plan.backend}").inc()
        _note_decision(plan)
        return plan

    def _fixed_plan(
        self,
        backend: str,
        source: str,
        rationale: str,
        shape: ShapeInfo,
        jobs: Optional[int],
        skey: Optional[str],
        bucket: str,
        fingerprint: Optional[str],
    ) -> ExecutionPlan:
        """A plan whose backend was dictated above the planner.

        Jobs and tile are still planned (the old hard-coded defaults moved
        here): an explicit ``jobs`` wins, else the model's best worker
        count for this backend and shape.
        """
        chosen_jobs = jobs if jobs is not None else self._model_jobs(shape, backend)
        est = self._estimate(shape, backend, chosen_jobs)
        return ExecutionPlan(
            backend=backend,
            jobs=chosen_jobs,
            tile=choose_tile(shape, chosen_jobs),
            source=source,
            rationale=rationale,
            skey=skey,
            bucket=bucket,
            fingerprint=fingerprint,
            est_s=est,
            shape=shape.to_dict(),
        )

    def _auto_plan(
        self,
        shape: ShapeInfo,
        jobs: Optional[int],
        skey: Optional[str],
        bucket: str,
        fingerprint: Optional[str],
    ) -> ExecutionPlan:
        from repro.core.backends import backend_names

        names = backend_names()
        order = {name: k for k, name in enumerate(names)}

        rows: List[ProfileRow] = []
        if skey is not None and fingerprint is not None:
            rows = [
                r
                for r in self._profiles().profile_rows(skey, fingerprint, bucket)
                if r.backend in order
                and (jobs is None or r.backend != "parallel" or r.jobs == jobs)
            ]
        candidates = self._candidates(shape, jobs)
        model_best = min(candidates, key=lambda c: c.est_s)
        # measurements win -- but only once they have something to say
        # about the model's favourite: while the model-best config is
        # unprofiled AND every measured mean is worse than its estimate,
        # explore it instead of locking onto whichever backend happened
        # to run first.  Pure function of (rows, shape); no clock reads.
        if rows:
            best = min(rows, key=lambda r: (r.mean_s, order[r.backend], r.jobs))
            model_best_measured = any(
                r.backend == model_best.backend and r.jobs == model_best.jobs
                for r in rows
            )
            if not model_best_measured and best.mean_s > model_best.est_s:
                return ExecutionPlan(
                    backend=model_best.backend,
                    jobs=model_best.jobs,
                    tile=choose_tile(shape, model_best.jobs),
                    source="model",
                    rationale=(
                        f"exploring unprofiled model favourite "
                        f"(est {model_best.est_s * 1e3:.3f} ms beats measured "
                        f"best {best.mean_s * 1e3:.3f} ms on {best.backend})"
                    ),
                    skey=skey,
                    bucket=bucket,
                    fingerprint=fingerprint,
                    est_s=model_best.est_s,
                    shape=shape.to_dict(),
                )
            est = self._estimate(shape, best.backend, best.jobs)
            return ExecutionPlan(
                backend=best.backend,
                jobs=best.jobs,
                tile=choose_tile(shape, best.jobs),
                source="profile",
                rationale=(
                    f"measured fastest of {len(rows)} profiled config(s): "
                    f"mean {best.mean_s * 1e3:.3f} ms over {best.runs} run(s)"
                ),
                skey=skey,
                bucket=bucket,
                fingerprint=fingerprint,
                est_s=est,
                shape=shape.to_dict(),
            )

        return ExecutionPlan(
            backend=model_best.backend,
            jobs=model_best.jobs,
            tile=choose_tile(shape, model_best.jobs),
            source="model",
            rationale=(
                f"cost model over {shape.cells} cells x {shape.statements} "
                f"stmt(s) (stage mix w{shape.whole_array}/s{shape.slab}"
                f"/f{shape.wavefront}/x{shape.scalar}, U={shape.slab_u}): "
                f"est {model_best.est_s * 1e3:.3f} ms"
            ),
            skey=skey,
            bucket=bucket,
            fingerprint=fingerprint,
            est_s=model_best.est_s,
            shape=shape.to_dict(),
        )

    def _candidates(
        self, shape: ShapeInfo, jobs: Optional[int]
    ) -> List[CostEstimate]:
        candidates = estimate_costs(shape)
        if jobs is not None:
            candidates = [
                c
                for c in candidates
                if c.backend != "parallel" or c.jobs == jobs
            ]
            if not any(c.backend == "parallel" for c in candidates):
                from repro.plan.model import _cost

                candidates.append(
                    CostEstimate("parallel", jobs, _cost(shape, "parallel", jobs))
                )
        return candidates

    def _model_jobs(self, shape: ShapeInfo, backend: str) -> int:
        """The model's worker count for a dictated backend (1 unless the
        backend actually fans out)."""
        if backend != "parallel":
            return 1
        best = min(
            (c for c in estimate_costs(shape) if c.backend == "parallel"),
            key=lambda c: c.est_s,
        )
        return best.jobs

    def _estimate(
        self, shape: ShapeInfo, backend: str, jobs: int
    ) -> Optional[float]:
        try:
            from repro.plan.model import _cost

            return _cost(shape, backend, jobs)
        except KeyError:
            return None  # custom registered backend the model cannot price

    # -------------------------------------------------------------- #
    # feedback
    # -------------------------------------------------------------- #

    def record(
        self,
        plan: ExecutionPlan,
        elapsed_s: float,
        *,
        budget: Optional["Budget"] = None,
    ) -> bool:
        """Feed one observed execution time back into the profile tier.

        Gated by :func:`repro.perf.memo.memoization_applicable` exactly
        like both cache tiers: work-limiting budgets (probes), active
        fault injectors and ``REPRO_FUSE_MEMO=0`` record nothing.
        """
        from repro.perf.memo import memoization_applicable

        reg = obs.default_registry()
        if plan.skey is None or plan.fingerprint is None or plan.bucket is None:
            reg.counter("plan.record_skipped").inc()
            return False
        if not memoization_applicable(budget):
            reg.counter("plan.record_skipped").inc()
            return False
        ok = bool(
            self._profiles().profile_record(
                plan.skey,
                plan.fingerprint,
                plan.bucket,
                plan.backend,
                plan.jobs,
                float(elapsed_s),
            )
        )
        reg.counter("plan.records" if ok else "plan.record_skipped").inc()
        return ok

    # -------------------------------------------------------------- #

    @staticmethod
    def _structural_key(fp: "FusedProgram") -> Optional[str]:
        from repro.perf.memo import structural_hash

        g = getattr(fp, "retimed_mldg", None)
        if g is None:
            return None
        try:
            return structural_hash(g)
        except Exception:  # pragma: no cover - defensive
            return None

    @staticmethod
    def _fingerprint() -> Optional[str]:
        try:
            from repro.store.fingerprint import current_fingerprint

            return current_fingerprint()
        except Exception:  # pragma: no cover - defensive
            return None


_DEFAULT = Planner()


def default_planner() -> Planner:
    """The shared planner used by module-level call sites (CLI, registry
    ``"auto"`` resolution); store resolution stays dynamic."""
    return _DEFAULT
