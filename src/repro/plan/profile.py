"""The online profile tier: observed kernel timings, bucketed by size.

A profile row aggregates every timed execution of one structurally-equal
program (``structural_hash``), in one environment (``env_fingerprint``),
at one iteration-space *size bucket*, on one ``(backend, jobs)``
configuration: run count, total seconds, best seconds.  Rows persist in
the ``profiles`` table of the L2 sqlite store (:mod:`repro.store`) so a
warm process -- or a whole serve fleet sharing the store file -- is
steered by prior measurements; when no store is configured, a bounded
in-process table keeps single-process warmth working.

Size buckets are width-2 powers of two over the cell count, so 24x24 and
30x30 share a bucket while 24x24 and 256x256 never do: backend crossover
is a function of scale, and mixing scales would let a measurement at one
size mis-steer another.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = [
    "size_bucket",
    "ProfileRow",
    "MemoryProfiles",
    "memory_profiles",
]


def size_bucket(n: int, m: int) -> str:
    """The deterministic size-bucket label for an ``(n, m)`` space.

    Buckets are two powers of two wide over the cell count
    ``(n+1)(m+1)``: ``lg0`` holds 1-3 cells, ``lg2`` 4-15, ``lg4``
    16-63, ... -- 24x24 (625 cells) lands in ``lg8``, 256x256 (66049) in
    ``lg16``.
    """
    cells = max(1, (n + 1) * (m + 1))
    k = cells.bit_length() - 1
    return f"lg{k - (k % 2)}"


@dataclass
class ProfileRow:
    """One aggregated observation line for a (backend, jobs) pair."""

    backend: str
    jobs: int
    runs: int
    total_s: float
    best_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.runs if self.runs else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "jobs": self.jobs,
            "runs": self.runs,
            "totalS": self.total_s,
            "bestS": self.best_s,
            "meanS": self.mean_s,
        }


class MemoryProfiles:
    """The in-process fallback profile table (no store configured).

    Mirrors the sqlite ``profiles`` table semantics: keyed by
    ``(skey, fingerprint, bucket)``, aggregating per ``(backend, jobs)``.
    Bounded by key count with oldest-inserted eviction; thread-safe.
    """

    def __init__(self, max_keys: int = 512) -> None:
        self.max_keys = max_keys
        self._lock = threading.Lock()
        self._rows: Dict[
            Tuple[str, str, str], Dict[Tuple[str, int], ProfileRow]
        ] = {}

    def profile_record(
        self,
        skey: str,
        fingerprint: str,
        bucket: str,
        backend: str,
        jobs: int,
        elapsed_s: float,
    ) -> bool:
        with self._lock:
            key = (skey, fingerprint, bucket)
            table = self._rows.get(key)
            if table is None:
                while len(self._rows) >= self.max_keys:
                    self._rows.pop(next(iter(self._rows)))
                table = self._rows[key] = {}
            row = table.get((backend, jobs))
            if row is None:
                table[(backend, jobs)] = ProfileRow(
                    backend, jobs, 1, elapsed_s, elapsed_s
                )
            else:
                row.runs += 1
                row.total_s += elapsed_s
                row.best_s = min(row.best_s, elapsed_s)
            return True

    def profile_rows(
        self, skey: str, fingerprint: str, bucket: str
    ) -> List[ProfileRow]:
        """Rows for one key, (backend, jobs)-sorted for determinism."""
        with self._lock:
            table = self._rows.get((skey, fingerprint, bucket), {})
            return [
                ProfileRow(r.backend, r.jobs, r.runs, r.total_s, r.best_s)
                for _, r in sorted(table.items())
            ]

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(t) for t in self._rows.values())


_MEMORY = MemoryProfiles()


def memory_profiles() -> MemoryProfiles:
    """The process-wide fallback table (used when no store is active)."""
    return _MEMORY
