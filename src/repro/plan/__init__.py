"""repro.plan -- the cost-model-driven execution planner.

One planning layer for every decision about *how* a fused program runs
(backend, worker count, tile size): a static cost model over problem
shape plus store-persisted online profiles, resolved under the
precedence **explicit > session > profile > model**.  See
docs/PLANNING.md.
"""

from repro.plan.model import (
    DEFAULT_BATCH_JOBS,
    DEFAULT_TILE,
    CostEstimate,
    ShapeInfo,
    choose_tile,
    estimate_costs,
    job_candidates,
    shape_info,
)
from repro.plan.planner import (
    ExecutionPlan,
    Planner,
    default_planner,
    plan_snapshot,
)
from repro.plan.profile import (
    MemoryProfiles,
    ProfileRow,
    memory_profiles,
    size_bucket,
)

__all__ = [
    "DEFAULT_BATCH_JOBS",
    "DEFAULT_TILE",
    "CostEstimate",
    "ExecutionPlan",
    "MemoryProfiles",
    "Planner",
    "ProfileRow",
    "ShapeInfo",
    "choose_tile",
    "default_planner",
    "estimate_costs",
    "job_candidates",
    "memory_profiles",
    "plan_snapshot",
    "shape_info",
    "size_bucket",
]
