"""The static cost model: problem shape -> estimated backend cost.

Every knob the execution layer used to hard-code lives here as a named,
documented constant: the default wavefront tile (formerly a literal in
:class:`repro.perf.parallel.ParallelExecutor`), the default batch worker
count (formerly ``SessionOptions.jobs = 4``) and the per-operation cost
coefficients the planner uses to rank backends before any measurement
exists.

The coefficients are calibrated against BENCH_perf.json on the reference
machine, but the model is deliberately coarse: its only job is to be
*sane on a cold start* (never pick ``parallel jobs=2`` for a 24x24 space
where pool submission overhead dominates; prefer whole-array numpy
lowering when the staged plan is vector-heavy).  As soon as one observed
timing exists for a ``(structural_hash, size bucket, fingerprint)`` key,
the profile tier (:mod:`repro.plan.profile`) overrides the model
entirely -- measurements beat estimates.

Nothing in this module reads the clock, the environment, or any mutable
global: a :class:`ShapeInfo` maps to the same cost table on every call,
which is what makes planner decisions reproducible (and testable).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.codegen.fused import FusedProgram
    from repro.vectors import IVec

__all__ = [
    "DEFAULT_TILE",
    "DEFAULT_BATCH_JOBS",
    "ShapeInfo",
    "shape_info",
    "CostEstimate",
    "estimate_costs",
    "job_candidates",
    "choose_tile",
]

#: Cells per wavefront tile for hyperplane execution.  Extracted from the
#: old ``ParallelExecutor(tile=256)`` default; the planner may shrink it
#: so one wavefront still feeds every worker (:func:`choose_tile`).
DEFAULT_TILE = 256

#: Worker-thread count for batch compilation when neither the call nor
#: the session picked one (the old ``SessionOptions.jobs = 4`` default).
DEFAULT_BATCH_JOBS = 4

# ------------------------------------------------------------------ #
# cost coefficients (seconds; calibrated against BENCH_perf.json)
# ------------------------------------------------------------------ #

#: Tree-walking interpreter: per statement *instance* (scalar visit).
C_SCALAR = 2.2e-6
#: Python dispatch of one numpy row-slice statement (compiled backend's
#: per-row kernel line, or one slab row in the staged lowering).
C_SLICE = 2.0e-6
#: Per element per statement streamed through a numpy vector op.
C_ELEM = 4.0e-9
#: Per whole-array statement op in the staged lowering.
C_WHOLE = 8.0e-6
#: Per-stage overhead of the staged lowering (stage setup + bounds).
C_STAGE = 15.0e-6
#: Submitting one task to a pool and joining its barrier.  This is what
#: makes ``parallel jobs=2`` a loss at 24x24 (rows x jobs submissions)
#: while winning nothing the thread pool could not already stream.
C_SUBMIT = 30.0e-6
#: Inline chunk dispatch (``jobs=1`` runs the same chunk code unpooled).
C_CHUNK = 8.0e-6
#: One-time kernel build/setup per backend invocation.
SETUP = {"interp": 0.0, "compiled": 40.0e-6, "numpy": 60.0e-6, "parallel": 150.0e-6}


@dataclass(frozen=True)
class ShapeInfo:
    """Everything the cost model may look at for one execution.

    Captures the iteration-space size, the fused body's statement count,
    and the staged-lowering mix from :func:`repro.codegen.nplower.plan_lowering`
    (whole-array / slab / wavefront / scalar statement counts plus the
    dependence-bound slab height ``U``).  Deliberately *excludes* wall
    clock, load average and anything else non-reproducible.
    """

    n: int
    m: int
    statements: int
    dim: int
    is_doall: bool
    stages: int
    whole_array: int
    slab: int
    wavefront: int
    scalar: int
    slab_u: int

    @property
    def rows(self) -> int:
        return self.n + 1

    @property
    def cols(self) -> int:
        return self.m + 1

    @property
    def cells(self) -> int:
        """Iteration-space size |I| = (n+1)(m+1)."""
        return self.rows * self.cols

    @property
    def instances(self) -> int:
        """Statement instances the execution must produce."""
        return self.cells * self.statements

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "m": self.m,
            "statements": self.statements,
            "dim": self.dim,
            "isDoall": self.is_doall,
            "stages": self.stages,
            "wholeArray": self.whole_array,
            "slab": self.slab,
            "wavefront": self.wavefront,
            "scalar": self.scalar,
            "slabU": self.slab_u,
            "cells": self.cells,
        }


def shape_info(
    fp: "FusedProgram",
    n: int,
    m: int,
    *,
    schedule: Optional["IVec"] = None,
    is_doall: bool = True,
) -> ShapeInfo:
    """Build the model's input from a fused program and its space.

    Runs the (cheap, pure) staged-lowering planner to get the stage mix;
    the lowering plan depends only on the program and schedule, never on
    ``n``/``m``, so one fused program always yields the same mix.
    """
    from repro.codegen.nplower import plan_lowering

    plan = plan_lowering(fp, schedule=schedule)
    heights = [s.slab for s in plan.stages if s.kind == "slab"]
    return ShapeInfo(
        n=n,
        m=m,
        statements=len(plan.flat),
        dim=2,
        is_doall=is_doall,
        stages=len(plan.stages),
        whole_array=plan.count("whole-array"),
        slab=plan.count("slab"),
        wavefront=plan.count("wavefront"),
        scalar=plan.count("scalar"),
        slab_u=max(heights) if heights else 1,
    )


@dataclass(frozen=True)
class CostEstimate:
    """One candidate configuration with its modelled wall time."""

    backend: str
    jobs: int
    est_s: float

    def to_dict(self) -> Dict[str, Any]:
        return {"backend": self.backend, "jobs": self.jobs, "estS": self.est_s}


def job_candidates(cpus: Optional[int] = None) -> Tuple[int, ...]:
    """The job counts the planner considers for the parallel backend.

    Deterministic for a given machine: {1, 2, min(4, cpus)} clipped to
    the cpu count.  ``cpus`` is injectable for tests.
    """
    count = cpus if cpus is not None else (os.cpu_count() or 1)
    cands = {1}
    if count >= 2:
        cands.add(2)
    if count >= 4:
        cands.add(min(4, count))
    return tuple(sorted(cands))


def choose_tile(shape: ShapeInfo, jobs: int) -> int:
    """Cells per wavefront tile for hyperplane execution.

    ``jobs=1`` keeps the cache-friendly default.  With real parallelism a
    wavefront holds at most ``min(rows, cols)`` cells, so the tile shrinks
    until every worker gets a tile per front (floored at 16 cells -- below
    that, submission overhead exceeds the tile's work).
    """
    if jobs <= 1:
        return DEFAULT_TILE
    front = max(1, min(shape.rows, shape.cols))
    per_worker = -(-front // jobs)  # ceil
    return max(16, min(DEFAULT_TILE, per_worker))


def _cost(shape: ShapeInfo, backend: str, jobs: int) -> float:
    if backend == "interp":
        return shape.instances * C_SCALAR
    if backend == "compiled":
        return (
            SETUP["compiled"]
            + shape.rows * shape.statements * C_SLICE
            + shape.instances * C_ELEM
        )
    if backend == "numpy":
        vector = shape.whole_array + shape.slab + shape.wavefront
        slab_slices = (
            shape.slab * -(-shape.rows // max(1, shape.slab_u))
            if shape.slab
            else 0
        )
        wavefront_slices = (
            shape.wavefront * (shape.rows + shape.cols) if shape.wavefront else 0
        )
        return (
            SETUP["numpy"]
            + shape.stages * C_STAGE
            + shape.whole_array * C_WHOLE
            + (slab_slices + wavefront_slices) * C_SLICE
            + vector * shape.cells * C_ELEM
            + shape.scalar * shape.cells * C_SCALAR
        )
    if backend == "parallel":
        if shape.is_doall:
            tasks = shape.rows * jobs
            dispatch = tasks * (C_SUBMIT if jobs > 1 else C_CHUNK)
            slices = shape.rows * shape.statements * C_SLICE
            stream = shape.instances * C_ELEM / max(1, jobs)
            return SETUP["parallel"] + dispatch + slices + stream
        # hyperplane execution is scalar per cell with a barrier per front
        fronts = shape.rows + shape.cols
        return (
            SETUP["parallel"]
            + shape.instances * C_SCALAR / (1.0 if jobs <= 1 else 1.5)
            + fronts * jobs * C_SUBMIT
        )
    raise KeyError(f"cost model knows no backend {backend!r}")


def estimate_costs(
    shape: ShapeInfo, *, cpus: Optional[int] = None
) -> List[CostEstimate]:
    """Every candidate (backend, jobs) with its modelled seconds.

    Ordered by the backend registry order (interp, compiled, numpy,
    parallel) then ascending jobs, so ties resolve the same way on every
    call -- callers pick ``min(..., key=lambda c: c.est_s)`` and rely on
    ``min``'s first-wins stability for determinism.
    """
    out = [
        CostEstimate("interp", 1, _cost(shape, "interp", 1)),
        CostEstimate("compiled", 1, _cost(shape, "compiled", 1)),
        CostEstimate("numpy", 1, _cost(shape, "numpy", 1)),
    ]
    for jobs in job_candidates(cpus):
        out.append(CostEstimate("parallel", jobs, _cost(shape, "parallel", jobs)))
    return out
