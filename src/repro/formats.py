"""Shared CLI output-format plumbing.

Every ``repro-fuse`` subcommand that renders in more than one format
resolves its ``--format`` through this one helper instead of a private
``choices=`` list, so the format vocabulary stays consistent across
``lint`` (text|json|sarif), ``analyze`` (text|json|dot|sarif),
``run``/``bench``/``stats`` (text|json) and the trace exporters
(text|json|chrome).
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

__all__ = [
    "TEXT",
    "JSON",
    "SARIF",
    "DOT",
    "CHROME",
    "add_format_argument",
]

TEXT = "text"
JSON = "json"
SARIF = "sarif"
DOT = "dot"
CHROME = "chrome"

_KNOWN = (TEXT, JSON, SARIF, DOT, CHROME)


def add_format_argument(
    parser: argparse.ArgumentParser,
    formats: Sequence[str],
    *,
    default: Optional[str] = TEXT,
    flag: str = "--format",
    dest: Optional[str] = None,
    help_suffix: str = "",
) -> None:
    """Add a format-selection option with a consistent help string.

    ``formats`` must come from the shared vocabulary (:data:`TEXT`,
    :data:`JSON`, :data:`SARIF`, :data:`DOT`, :data:`CHROME`); ``default``
    may be ``None`` for subcommands that infer the format from legacy
    flags.  ``argparse`` rejects values outside ``formats`` as usage
    errors (exit code 2), exactly like the per-subcommand lists it
    replaces.
    """
    unknown = [f for f in formats if f not in _KNOWN]
    if unknown:
        raise ValueError(f"unknown output formats {unknown}; known: {_KNOWN}")
    if default is not None and default not in formats:
        raise ValueError(f"default {default!r} not among formats {tuple(formats)}")
    help_text = (
        f"output format (default: {default})" if default is not None
        else "output format (default: text)"
    )
    if help_suffix:
        help_text += f"; {help_suffix}"
    kwargs = {"dest": dest} if dest is not None else {}
    parser.add_argument(
        flag, choices=list(formats), default=default, help=help_text, **kwargs
    )
