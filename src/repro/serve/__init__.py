"""repro.serve -- the fault-tolerant process-sharded compilation service.

The paper's polynomial-time guarantee makes per-request compile cost
bounded and predictable, which is what makes a *service* with enforceable
deadlines feasible.  This package is the cross-process robustness layer on
top of :mod:`repro.core`'s batch compilation (docs/SERVING.md):

* **wire** -- the ``repro-serve/1`` JSON request/response envelopes
  (picklable, so the same shapes ride the process pool and HTTP).
* **worker** -- the function executed inside pool worker processes, plus
  the process-level chaos seam (seeded worker SIGKILL / hang injection).
* **supervisor** -- a generation-counted :class:`SupervisedPool` that
  detects broken pools and hung workers, replaces the pool and lets every
  in-flight request re-dispatch itself.
* **admission** -- inflight quotas with load shedding (typed 429-style
  rejections carrying ``Retry-After`` estimates).
* **breaker** -- per-workload-class circuit breakers keyed by
  ``structural_hash`` so one pathological program cannot burn the pool.
* **service** -- :class:`CompileService`: retry + exponential backoff +
  jitter per request, degrading onto the in-process resilience ladder on
  the final attempt instead of erroring.
* **daemon** -- the stdlib ``http.server`` front end (``repro-fuse serve``).
* **loadgen** -- the load-generator benchmark (``repro-fuse loadgen``)
  writing ``BENCH_serve.json``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.service import CompileService, ServeConfig
from repro.serve.supervisor import SupervisedPool
from repro.serve.wire import (
    SERVE_SCHEMA,
    SV001,
    SV002,
    SV003,
    SV004,
    SV005,
    SV006,
    CompileRequest,
    CompileResponse,
    WireError,
)

__all__ = [
    "SERVE_SCHEMA",
    "SV001",
    "SV002",
    "SV003",
    "SV004",
    "SV005",
    "SV006",
    "AdmissionController",
    "BreakerState",
    "CircuitBreaker",
    "CompileRequest",
    "CompileResponse",
    "CompileService",
    "ServeConfig",
    "SupervisedPool",
    "WireError",
]
