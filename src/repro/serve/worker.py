"""The code that runs *inside* pool worker processes.

:func:`compile_request` is the single entry point the supervisor submits
to the :class:`~concurrent.futures.ProcessPoolExecutor`.  Its contract is
the backbone of the service's fault model:

* It takes and returns **plain dicts** (the ``repro-serve/1`` envelopes),
  so nothing unpicklable ever crosses the process boundary.
* It **never raises**: every compile failure -- parse error, validation,
  fusion, budget exhaustion -- comes back as a well-formed ``error``
  response.  The only ways a submission can fail at the future level are
  infrastructure faults (the worker died, the pool broke), which is
  exactly what the supervisor's retry logic keys on.
* The **chaos seam**: when the pool was initialized with faults allowed
  (:func:`init_worker`), a request's ``fault`` spec is entered via the
  ordinary :func:`repro.resilience.faults.inject` context before the
  compile, and the request passes through the ``"worker"`` injection
  point.  A :class:`~repro.resilience.faults.WorkerCrash` SIGKILLs the
  process right here; a :class:`~repro.resilience.faults.WorkerHang`
  stalls it; algorithm-level injectors (``mldg``/``retiming``/...) ride
  into the pipeline exactly like the in-process chaos matrix.

Cache tiers (docs/SERVING.md, docs/CACHING.md): the fusion/retiming/
kernel memo caches (L1) are **per-worker** -- fork-started workers inherit
a warm copy of the parent's caches at pool creation and diverge
afterwards.  Cross-process sharing happens one tier down: when the
request carries ``storePath`` (stamped by the service from its config),
the worker's session reads through and writes through that sqlite L2
store (:mod:`repro.store`), so a result compiled by one worker warms
every other worker and every later daemon restart.  Each worker opens
its *own* handle on the shared file -- a worker crash mid-write cannot
poison siblings (WAL transactions either commit or vanish).  Metrics
recorded in a worker stay in that worker; the latency and outcome
numbers the service aggregates all travel in the response envelope, and
an L2 hit is additionally flagged in the response ``notes``.
"""

from __future__ import annotations

import os
import time
from contextlib import ExitStack
from typing import Any, Dict, Optional

__all__ = ["init_worker", "compile_request", "faults_allowed", "resolve_backend"]

_STATE: Dict[str, Any] = {"allow_faults": False}


def init_worker(allow_faults: bool = False) -> None:
    """Pool initializer: runs once in each fresh worker process.

    ``allow_faults`` gates the chaos seam -- a production daemon started
    without ``--chaos`` ignores ``fault`` specs entirely, so a hostile
    request cannot SIGKILL workers.
    """
    _STATE["allow_faults"] = bool(allow_faults)


def faults_allowed() -> bool:
    """Whether this process honors request ``fault`` specs (chaos mode)."""
    if _STATE["allow_faults"]:
        return True
    return os.environ.get("REPRO_SERVE_CHAOS", "0").lower() in ("1", "true", "on")


def compile_request(req_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Compile one ``repro-serve/1`` request dict into a response dict."""
    from repro import obs
    from repro.serve.wire import (
        CompileRequest,
        CompileResponse,
        WireError,
        error_payload,
        source_digest,
    )

    t0 = time.perf_counter()
    pid = os.getpid()
    try:
        req = CompileRequest.from_dict(req_dict)
    except WireError as exc:
        return CompileResponse(
            status="error",
            name=str(req_dict.get("name", "program")) if isinstance(req_dict, dict) else "program",
            request_id=str(req_dict.get("requestId", "")) if isinstance(req_dict, dict) else "",
            error=error_payload(exc),
            code=exc.code,
            worker_pid=pid,
            worker_ms=(time.perf_counter() - t0) * 1000.0,
        ).to_dict()

    tracer = obs.Tracer()
    resp = CompileResponse(
        status="error",
        name=req.name,
        request_id=req.request_id,
        source_digest=req.digest,
        trace_id=tracer.trace_id,
        worker_pid=pid,
    )
    try:
        with ExitStack() as stack:
            _enter_fault(stack, req)
            with tracer.span("serve.worker.compile", request=req.request_id):
                _compile(req, tracer, resp)
    except Exception as exc:  # typed compile errors -> error response
        resp.status = "error"
        resp.error = error_payload(exc)
        try:
            resp.diagnostics = [
                d.to_dict() for d in getattr(exc, "diagnostics", None) or []
            ]
        except Exception:
            resp.diagnostics = []
    finally:
        resp.worker_ms = (time.perf_counter() - t0) * 1000.0
    # belt and braces: the response must survive the trip back through
    # pickle whatever the pipeline attached
    try:
        return resp.to_dict()
    except Exception as exc:  # pragma: no cover - defensive
        return CompileResponse(
            status="error",
            name=req.name,
            request_id=req.request_id,
            source_digest=source_digest(req.source),
            error=error_payload(exc),
            worker_pid=pid,
            worker_ms=(time.perf_counter() - t0) * 1000.0,
        ).to_dict()


def _enter_fault(stack: ExitStack, req: "Any") -> None:
    """Enter the request's chaos context and hit the ``"worker"`` seam."""
    from repro.resilience import faults

    if req.fault is None or not faults_allowed():
        return
    injector, seed = faults.injector_from_spec(req.fault)
    # retries re-seed deterministically: a WorkerCrash(probability<1) can
    # kill attempt 0 and spare attempt 1, all replayable
    stack.enter_context(faults.inject(injector, seed=seed + req.attempt))
    faults.pass_through("worker", req.to_dict())


def _compile(req: "Any", tracer: "Any", resp: "Any") -> None:
    """Run the session pipeline for ``req``, filling ``resp`` in place."""
    from repro import obs
    from repro.codegen import emit_fused_program
    from repro.core.session import Session, SessionOptions
    from repro.loopir.printer import format_program
    from repro.perf.memo import structural_hash
    from repro.resilience.budget import Budget

    budget = (
        Budget(deadline_ms=req.deadline_ms).start()
        if req.deadline_ms is not None
        else None
    )
    session = Session(
        options=SessionOptions(
            strategy=req.strategy,
            min_rung=req.min_rung,
            ladder=req.ladder,
            backend=req.backend,
            prune_edges=req.prune_edges,
            verify_execution=req.verify_execution,
            store_path=req.store_path,
        ),
        budget=budget,
        tracer=tracer,
    )
    l2_hits_before = obs.default_registry().counter("store.hits").value
    if req.resilient:
        out = session.fuse_program_resilient(req.source)
        resp.rung = out.rung.label
        resp.parallelism = out.resilient.parallelism.value
        resp.recovery = out.report.to_dict()
        if req.emit:
            resp.emitted = out.emitted_code()
    else:
        out = session.fuse_program(req.source, strategy=req.strategy)
        resp.strategy = out.fusion.strategy.value
        resp.parallelism = out.fusion.parallelism.value
        resp.retiming = {
            name: list(vec) for name, vec in out.fusion.retiming.as_dict().items()
        }
        if req.emit:
            resp.emitted = (
                emit_fused_program(out.fused)
                if out.fused is not None
                else format_program(out.nest)
            )
    resp.status = "ok"
    resp.structural_hash = structural_hash(out.mldg)
    resp.notes = list(out.notes)
    resolve_backend(req.backend, session, out, resp)
    l2_hits = obs.default_registry().counter("store.hits").value - l2_hits_before
    if l2_hits > 0:
        # visible evidence of cross-worker warmth in response/bench output
        resp.notes.append(f"store: {int(l2_hits)} L2 hit(s) (pid {os.getpid()})")
    resp.diagnostics = [d.to_dict() for d in out.diagnostics]


#: Nominal iteration-space extents the worker plans at when a request
#: says ``backend="auto"``.  Serve compiles but never executes kernels,
#: so the planner's answer here is advisory -- clients that execute at a
#: real size re-plan locally and get the size-bucketed decision.
_PLAN_SHAPE = (256, 256)


def resolve_backend(backend: str, session: "Any", out: "Any", resp: "Any") -> None:
    """Echo the effective execution backend on the response.

    Explicit requests echo verbatim (the precedence contract: an explicit
    per-request backend always beats the daemon default and the planner).
    ``"auto"`` is resolved through the session's planner -- against the
    request's L2 store when one rode the wire, so profile rows written by
    executing clients steer the serve-side answer too.
    """
    if backend != "auto":
        resp.backend = backend
        return
    fused = getattr(out, "fused", None)
    if fused is None:
        # nothing executable came out of the pipeline (e.g. a rung below
        # fusion); the ground-truth interpreter is the only honest answer
        resp.backend = "interp"
        return
    fusion = getattr(out, "fusion", None)
    if fusion is None:
        fusion = getattr(out, "resilient", None)
    schedule = getattr(fusion, "schedule", None)
    is_doall = getattr(fusion, "is_doall", None)
    if is_doall is None:
        is_doall = schedule is None
    plan = session.planner.plan_execution(
        fused, _PLAN_SHAPE[0], _PLAN_SHAPE[1],
        schedule=schedule, is_doall=bool(is_doall), requested="auto",
    )
    resp.backend = plan.backend
    resp.plan = plan.to_dict()
