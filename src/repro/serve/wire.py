"""The ``repro-serve/1`` wire schema.

One request/response envelope pair shared by every transport: the process
pool (:mod:`repro.serve.worker` receives the request *dict* and returns
the response *dict* -- both are plain picklable primitives), the HTTP
daemon (:mod:`repro.serve.daemon` serializes the same dicts as JSON) and
:meth:`repro.core.Session.fuse_many`'s process-pool mode.

A malformed request never raises past :meth:`CompileRequest.from_dict`:
it raises :class:`WireError` carrying the ``SV006`` diagnostic code, which
every transport converts into a well-formed error response.  The service
layer's own failure modes carry the other ``SV###`` codes (documented in
docs/DIAGNOSTICS.md):

====== ==========================================================
code   meaning
====== ==========================================================
SV001  a worker process crashed while compiling the request
SV002  the request timed out waiting on (or inside) a worker
SV003  admission control shed the request (quota; Retry-After)
SV004  the workload class's circuit breaker is open (Retry-After)
SV005  the final attempt was served by the in-process degradation
       ladder instead of a worker
SV006  the request envelope was malformed
SV007  the supervisor itself failed (an internal service error --
       the server's fault, HTTP 500)
====== ==========================================================
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fusion.driver import Strategy
from repro.resilience.report import rung_from_label

__all__ = [
    "SERVE_SCHEMA",
    "SV001",
    "SV002",
    "SV003",
    "SV004",
    "SV005",
    "SV006",
    "SV007",
    "RESPONSE_STATUSES",
    "CompileRequest",
    "CompileResponse",
    "WireError",
    "source_digest",
]

SERVE_SCHEMA = "repro-serve/1"

SV001 = "SV001"  # worker-crashed
SV002 = "SV002"  # request-timeout
SV003 = "SV003"  # request-shed
SV004 = "SV004"  # circuit-open
SV005 = "SV005"  # degraded-fallback
SV006 = "SV006"  # malformed-request
SV007 = "SV007"  # internal-error

#: Every status a response may carry.  ``ok``/``degraded``/``error`` are
#: terminal compile outcomes; ``shed``/``rejected`` are admission/breaker
#: refusals that carry ``retry_after_ms``.
RESPONSE_STATUSES = ("ok", "degraded", "error", "shed", "rejected")

_RUNG_LABELS = ("none", "partition", "legal-only", "hyperplane", "doall")


class WireError(ValueError):
    """A malformed ``repro-serve/1`` envelope (diagnostic code ``SV006``)."""

    code = SV006


def source_digest(source: str) -> str:
    """A short stable digest of the program *text* (pre-parse workload key).

    The circuit breaker prefers the rename-invariant
    :func:`repro.perf.memo.structural_hash` once a worker has reported it;
    this digest is the bootstrap key for programs that never got that far.
    """
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _mint_request_id() -> str:
    return os.urandom(8).hex()


@dataclass
class CompileRequest:
    """One compile request (the unit the supervisor retries).

    ``fault`` is the process-level chaos seam: a spec like
    ``{"injector": "WorkerCrash", "seed": 3}`` that the *worker* honors
    only when the pool was started with faults allowed (``--chaos`` /
    :func:`repro.serve.worker.init_worker`).  ``attempt`` is stamped by
    the service before each dispatch so seeded injectors can vary their
    decision across retries (seed + attempt replays exactly).
    """

    source: str
    name: str = "program"
    strategy: str = "auto"
    resilient: bool = False
    min_rung: str = "none"
    deadline_ms: Optional[float] = None
    ladder: Optional[Tuple[str, ...]] = None
    backend: str = "interp"
    prune_edges: bool = True
    verify_execution: bool = True
    emit: bool = True
    fault: Optional[Dict[str, Any]] = None
    attempt: int = 0
    store_path: Optional[str] = None
    request_id: str = field(default_factory=_mint_request_id)

    def __post_init__(self) -> None:
        if not isinstance(self.source, str) or not self.source.strip():
            raise WireError("request 'source' must be non-empty DSL text")
        try:
            Strategy(self.strategy)
        except ValueError:
            raise WireError(
                f"unknown strategy {self.strategy!r}; "
                f"expected one of {[s.value for s in Strategy]}"
            ) from None
        try:
            rung_from_label(self.min_rung)
        except ValueError as exc:
            raise WireError(str(exc)) from None
        if self.ladder is not None:
            self.ladder = tuple(self.ladder)
            bad = [r for r in self.ladder if r not in _RUNG_LABELS]
            if bad:
                raise WireError(f"unknown ladder rungs {bad!r}")
        from repro.core.backends import backend_names

        if self.backend not in backend_names() + ("auto",):
            raise WireError(
                f"unknown execution backend {self.backend!r}; "
                f"known: {list(backend_names()) + ['auto']}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise WireError("'deadlineMs' must be positive")
        if self.fault is not None and not isinstance(self.fault, dict):
            raise WireError("'fault' must be an object like {'injector': ..., 'seed': ...}")
        if self.store_path is not None and (
            not isinstance(self.store_path, str) or not self.store_path.strip()
        ):
            raise WireError("'storePath' must be a non-empty path string")

    @property
    def digest(self) -> str:
        return source_digest(self.source)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SERVE_SCHEMA,
            "requestId": self.request_id,
            "name": self.name,
            "source": self.source,
            "strategy": self.strategy,
            "resilient": self.resilient,
            "minRung": self.min_rung,
            "deadlineMs": self.deadline_ms,
            "ladder": list(self.ladder) if self.ladder is not None else None,
            "backend": self.backend,
            "pruneEdges": self.prune_edges,
            "verifyExecution": self.verify_execution,
            "emit": self.emit,
            "fault": self.fault,
            "attempt": self.attempt,
            "storePath": self.store_path,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "CompileRequest":
        if not isinstance(data, dict):
            raise WireError(
                f"request must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema", SERVE_SCHEMA)
        if schema != SERVE_SCHEMA:
            raise WireError(
                f"unsupported schema {schema!r}; this server speaks {SERVE_SCHEMA}"
            )
        if "source" not in data:
            raise WireError("request is missing 'source'")
        ladder = data.get("ladder")
        try:
            return cls(
                source=data["source"],
                name=str(data.get("name", "program")),
                strategy=str(data.get("strategy", "auto")),
                resilient=bool(data.get("resilient", False)),
                min_rung=str(data.get("minRung", "none")),
                deadline_ms=_opt_number(data, "deadlineMs"),
                ladder=tuple(ladder) if ladder is not None else None,
                backend=str(data.get("backend", "interp")),
                prune_edges=bool(data.get("pruneEdges", True)),
                verify_execution=bool(data.get("verifyExecution", True)),
                emit=bool(data.get("emit", True)),
                fault=data.get("fault"),
                attempt=int(data.get("attempt", 0)),
                store_path=data.get("storePath"),
                request_id=str(data.get("requestId") or _mint_request_id()),
            )
        except WireError:
            raise
        except (TypeError, ValueError) as exc:
            raise WireError(f"malformed request field: {exc}") from exc


def _opt_number(data: Dict[str, Any], key: str) -> Optional[float]:
    value = data.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise WireError(f"{key!r} must be a number, got {value!r}")
    return float(value)


@dataclass
class CompileResponse:
    """One compile response -- always well-formed, whatever happened.

    ``status`` contract (the acceptance invariant): every request gets
    exactly one of

    * ``ok`` -- a worker compiled it through the requested pipeline;
    * ``degraded`` -- the supervisor's final-attempt fallback served it
      through the in-process resilience ladder (``code`` = ``SV005``,
      ``recovery`` carries the :class:`RecoveryReport` dict);
    * ``error`` -- a typed compile error (parse/validation/fusion/budget),
      never retried because it is deterministic;
    * ``shed`` / ``rejected`` -- admission control or the circuit breaker
      refused it (``retry_after_ms`` says when to come back).
    """

    status: str
    name: str = "program"
    request_id: str = ""
    strategy: Optional[str] = None
    parallelism: Optional[str] = None
    rung: Optional[str] = None
    structural_hash: Optional[str] = None
    source_digest: Optional[str] = None
    retiming: Optional[Dict[str, List[int]]] = None
    emitted: Optional[str] = None
    recovery: Optional[Dict[str, Any]] = None
    notes: List[str] = field(default_factory=list)
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    error: Optional[Dict[str, Any]] = None
    code: Optional[str] = None
    trace_id: Optional[str] = None
    worker_pid: Optional[int] = None
    worker_ms: Optional[float] = None
    attempts: int = 0
    retries: int = 0
    worker_crashes: int = 0
    timeouts: int = 0
    queue_ms: Optional[float] = None
    total_ms: Optional[float] = None
    retry_after_ms: Optional[float] = None
    #: Concrete execution backend this compile was served under.  When the
    #: request (or the daemon default) said ``"auto"``, the worker resolves
    #: it through the execution planner and echoes the choice here; for
    #: explicit requests it echoes the request verbatim.
    backend: Optional[str] = None
    #: ``ExecutionPlan.to_dict()`` of the planner decision, only present
    #: when the backend was resolved from ``"auto"``.
    plan: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise WireError(
                f"unknown response status {self.status!r}; "
                f"expected one of {RESPONSE_STATUSES}"
            )

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded")

    @property
    def well_formed(self) -> bool:
        """The acceptance-criteria predicate: a terminal outcome with the
        artifacts its status promises."""
        if self.status == "ok":
            return self.rung is not None or self.strategy is not None
        if self.status == "degraded":
            return self.rung is not None and self.recovery is not None
        if self.status == "error":
            return self.error is not None and "type" in self.error
        return self.retry_after_ms is not None  # shed / rejected

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": SERVE_SCHEMA,
            "status": self.status,
            "name": self.name,
            "requestId": self.request_id,
            "strategy": self.strategy,
            "parallelism": self.parallelism,
            "rung": self.rung,
            "structuralHash": self.structural_hash,
            "sourceDigest": self.source_digest,
            "retiming": self.retiming,
            "emitted": self.emitted,
            "recovery": self.recovery,
            "notes": list(self.notes),
            "diagnostics": list(self.diagnostics),
            "error": self.error,
            "code": self.code,
            "traceId": self.trace_id,
            "workerPid": self.worker_pid,
            "workerMs": self.worker_ms,
            "attempts": self.attempts,
            "retries": self.retries,
            "workerCrashes": self.worker_crashes,
            "timeouts": self.timeouts,
            "queueMs": self.queue_ms,
            "totalMs": self.total_ms,
            "retryAfterMs": self.retry_after_ms,
            "backend": self.backend,
            "plan": self.plan,
        }
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "CompileResponse":
        if not isinstance(data, dict):
            raise WireError(
                f"response must be a JSON object, got {type(data).__name__}"
            )
        if "status" not in data:
            raise WireError("response is missing 'status'")
        return cls(
            status=data["status"],
            name=str(data.get("name", "program")),
            request_id=str(data.get("requestId", "")),
            strategy=data.get("strategy"),
            parallelism=data.get("parallelism"),
            rung=data.get("rung"),
            structural_hash=data.get("structuralHash"),
            source_digest=data.get("sourceDigest"),
            retiming=data.get("retiming"),
            emitted=data.get("emitted"),
            recovery=data.get("recovery"),
            notes=list(data.get("notes") or []),
            diagnostics=list(data.get("diagnostics") or []),
            error=data.get("error"),
            code=data.get("code"),
            trace_id=data.get("traceId"),
            worker_pid=data.get("workerPid"),
            worker_ms=data.get("workerMs"),
            attempts=int(data.get("attempts", 0)),
            retries=int(data.get("retries", 0)),
            worker_crashes=int(data.get("workerCrashes", 0)),
            timeouts=int(data.get("timeouts", 0)),
            queue_ms=data.get("queueMs"),
            total_ms=data.get("totalMs"),
            retry_after_ms=data.get("retryAfterMs"),
            backend=data.get("backend"),
            plan=data.get("plan"),
        )


def error_payload(exc: BaseException) -> Dict[str, Any]:
    """A JSON-safe error dict that survives hostile ``__str__``/attributes."""
    try:
        message = str(exc)
    except Exception:
        message = f"<unprintable {type(exc).__name__}>"
    try:
        diagnostics = [d.to_dict() for d in getattr(exc, "diagnostics", None) or []]
    except Exception:
        diagnostics = []
    return {"type": type(exc).__name__, "message": message, "diagnostics": diagnostics}


__all__.append("error_payload")


def request_from_program(
    name: str,
    source: str,
    *,
    strategy: str = "auto",
    resilient: bool = False,
    min_rung: str = "none",
    deadline_ms: Optional[float] = None,
    ladder: Optional[Sequence[str]] = None,
    backend: str = "interp",
    prune_edges: bool = True,
    verify_execution: bool = True,
    fault: Optional[Dict[str, Any]] = None,
    store_path: Optional[str] = None,
) -> CompileRequest:
    """Convenience constructor used by batch/loadgen call sites."""
    return CompileRequest(
        source=source,
        name=name,
        strategy=strategy,
        resilient=resilient,
        min_rung=min_rung,
        deadline_ms=deadline_ms,
        ladder=tuple(ladder) if ladder is not None else None,
        backend=backend,
        prune_edges=prune_edges,
        verify_execution=verify_execution,
        fault=fault,
        store_path=store_path,
    )


__all__.append("request_from_program")
