"""The HTTP front end: ``repro-fuse serve``.

A deliberately boring transport -- stdlib :class:`ThreadingHTTPServer`
speaking JSON ``repro-serve/1`` envelopes; every interesting decision
lives in :class:`~repro.serve.service.CompileService`.  Endpoints:

========================= ============================================
``POST /v1/compile``      one request dict -> one response dict
``POST /v1/batch``        ``{"programs": [request, ...]}`` -> responses
``GET /healthz``          liveness + pool generation
``GET /statz``            service snapshot + serve.* metric counters
========================= ============================================

HTTP status mapping (docs/SERVING.md): ``ok``/``degraded`` -> 200,
typed compile ``error`` -> 422 (malformed envelope ``SV006`` -> 400;
infrastructure errors ``SV001``/``SV002``/``SV007`` -> 500, the server's
fault, not the client's), ``shed`` -> 429 and ``rejected`` -> 503, both
with a ``Retry-After`` header (integer seconds, floored at 1; the
precise ``retryAfterMs`` rides in the body).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.serve.service import CompileService, ServeConfig
from repro.serve.wire import SERVE_SCHEMA, SV001, SV002, SV006, SV007

__all__ = ["ServeDaemon", "http_status_for", "run_daemon"]

#: Request bodies above this size are refused outright (413).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: ``error`` codes that are the *server's* fault -- the exhausted
#: fallback after worker crashes/timeouts (SV001/SV002) and internal
#: supervisor errors (SV007) -- and must not masquerade as 4xx.
_SERVER_FAULT_CODES = (SV001, SV002, SV007)


def http_status_for(resp: Dict[str, Any]) -> int:
    """Map one response envelope to its HTTP status code."""
    status = resp.get("status")
    if status in ("ok", "degraded"):
        return 200
    if status == "error":
        code = resp.get("code")
        if code == SV006:
            return 400
        if code in _SERVER_FAULT_CODES:
            return 500
        return 422  # typed, deterministic compile errors
    if status == "shed":
        return 429
    if status == "rejected":
        return 503
    return 500  # unreachable for well-formed envelopes


def _retry_after_header(resp: Dict[str, Any]) -> Optional[str]:
    ms = resp.get("retryAfterMs")
    if ms is None:
        return None
    return str(max(1, math.ceil(float(ms) / 1000.0)))


class _Handler(BaseHTTPRequestHandler):
    """One request thread per connection (ThreadingHTTPServer)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CompileService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "schema": SERVE_SCHEMA,
                    "poolGeneration": self.service.pool.generation,
                },
            )
        elif self.path == "/statz":
            metrics = obs.default_registry().to_dict()
            doc = {
                "schema": SERVE_SCHEMA,
                "service": self.service.snapshot(),
                "metrics": {
                    kind: {
                        name: value
                        for name, value in entries.items()
                        # store.* counters are the daemon process's own L2
                        # traffic (the fallback path); the fleet-wide view
                        # is the service snapshot's "store" block
                        if name.startswith(("serve.", "store."))
                    }
                    for kind, entries in metrics.items()
                },
            }
            self._send_json(200, doc)
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        payload, err = self._read_json()
        if err is not None:
            return
        if self.path == "/v1/compile":
            resp = self.service.handle_dict(payload)
            self._send_json(
                http_status_for(resp), resp, retry_after=_retry_after_header(resp)
            )
        elif self.path == "/v1/batch":
            programs = payload.get("programs") if isinstance(payload, dict) else None
            if not isinstance(programs, list):
                self._send_json(
                    400, {"error": "batch body must carry a 'programs' list"}
                )
                return
            responses = [self.service.handle_dict(p) for p in programs]
            self._send_json(
                200,
                {
                    "schema": SERVE_SCHEMA,
                    "responses": responses,
                    "okCount": sum(
                        1 for r in responses if r["status"] in ("ok", "degraded")
                    ),
                },
            )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # ------------------------------------------------------------------ #

    def _read_json(self) -> Tuple[Any, Optional[str]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # the oversized body is never read: close the connection so a
            # keep-alive client's next request isn't parsed out of it
            self.close_connection = True
            self._send_json(413, {"error": "request body too large"})
            return None, "too-large"
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null"), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            obs.default_registry().counter("serve.malformed").inc()
            self._send_json(
                400, {"error": f"body is not valid JSON: {exc}", "code": SV006}
            )
            return None, "bad-json"

    def _send_json(
        self, status: int, body: Any, *, retry_after: Optional[str] = None
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        obs.default_registry().counter("serve.http.requests").inc()


class ServeDaemon:
    """One HTTP server bound to one :class:`CompileService`.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)``.  :meth:`start` serves on a daemon thread;
    use as a context manager for deterministic teardown.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        service: Optional[CompileService] = None,
    ) -> None:
        self.service = service if service is not None else CompileService(config)
        self._owns_service = service is None
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.service = self.service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeDaemon":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._owns_service:
            self.service.shutdown()

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def run_daemon(
    config: Optional[ServeConfig] = None,
    *,
    host: str = "127.0.0.1",
    port: int = 8337,
) -> ServeDaemon:
    """Construct and start a daemon (returns it already serving)."""
    return ServeDaemon(config, host=host, port=port).start()
