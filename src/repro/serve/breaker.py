"""Per-workload-class circuit breakers.

One pathological program -- one that reliably crashes or hangs workers --
must not be allowed to burn the pool over and over while every other
request pays the replacement cost.  The :class:`CircuitBreaker` keeps a
tiny state machine per **workload class**:

* the class key is the rename-invariant
  :func:`~repro.perf.memo.structural_hash` once a worker has reported it
  (the service maintains the ``source digest -> structural hash`` alias),
  falling back to the source digest before that -- so renamed copies of
  the same pathological program share one breaker;
* ``CLOSED`` counts *consecutive* infrastructure failures (crashes,
  timeouts); at ``threshold`` the class trips ``OPEN``;
* ``OPEN`` rejects instantly with the remaining cooldown as
  ``Retry-After``;
* after ``cooldown_ms`` the next request becomes the ``HALF_OPEN`` probe:
  success closes the breaker, failure re-opens it for a full cooldown.

A probe must always *resolve*: :meth:`CircuitBreaker.allow` hands the
probe request a token, and whichever of ``record_success`` /
``record_failure`` / ``record_abandoned`` fires first settles it.  The
service calls :meth:`CircuitBreaker.record_abandoned` in a ``finally`` so
an uncharged infrastructure path (abandoned/stalled futures, the
degraded fallback, internal errors) re-opens the class instead of
leaving it half-open with a stuck probe that rejects everyone forever.

The class map is LRU-bounded (``max_classes``): when full, idle
``CLOSED`` classes are evicted first, so a long-running daemon fed a
stream of unique programs does not grow without bound.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro import obs

__all__ = ["Admission", "BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class Admission:
    """The verdict of :meth:`CircuitBreaker.allow` -- truthy iff admitted.

    When this request is the half-open probe, ``probe_token`` identifies
    it; the caller must settle the probe via ``record_success`` /
    ``record_failure`` or, failing both, ``record_abandoned(key, token)``.
    """

    __slots__ = ("allowed", "probe_token")

    def __init__(self, allowed: bool, probe_token: Optional[int] = None) -> None:
        self.allowed = allowed
        self.probe_token = probe_token

    def __bool__(self) -> bool:
        return self.allowed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Admission(allowed={self.allowed}, probe_token={self.probe_token})"


class _ClassState:
    __slots__ = (
        "state",
        "consecutive_failures",
        "opened_at_ms",
        "probing",
        "probe_token",
    )

    def __init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = 0.0
        self.probing = False
        self.probe_token = 0


class CircuitBreaker:
    """Trip-on-consecutive-failures breaker, one state machine per key."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown_ms: float = 1_000.0,
        max_classes: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if max_classes < 1:
            raise ValueError("breaker max_classes must be >= 1")
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self.max_classes = max_classes
        self._clock = clock
        self._lock = threading.Lock()
        self._classes: "OrderedDict[str, _ClassState]" = OrderedDict()
        self._probe_seq = 0
        self._trips = 0

    def _now_ms(self) -> float:
        return self._clock() * 1000.0

    def _state_for(self, key: str) -> _ClassState:
        state = self._classes.get(key)
        if state is None:
            if len(self._classes) >= self.max_classes:
                self._evict_one()
            state = self._classes[key] = _ClassState()
        else:
            self._classes.move_to_end(key)
        return state

    def _evict_one(self) -> None:
        """Drop one class to stay under ``max_classes`` (lock held).

        Idle ``CLOSED`` classes go first, least-recently-used; when every
        class carries signal, the LRU entry goes anyway -- losing breaker
        state is benign (the class re-trips after ``threshold`` failures),
        unbounded memory is not.
        """
        for key, state in self._classes.items():
            if (
                state.state is BreakerState.CLOSED
                and state.consecutive_failures == 0
                and not state.probing
            ):
                del self._classes[key]
                return
        self._classes.popitem(last=False)
        obs.default_registry().counter("serve.breaker.evicted_hot").inc()

    # ------------------------------------------------------------------ #

    def allow(self, key: str) -> Admission:
        """May a request of class ``key`` proceed right now?

        An ``OPEN`` class whose cooldown has elapsed admits exactly one
        half-open probe; everything else queues behind that probe's
        verdict.  The returned :class:`Admission` is truthy iff admitted
        and carries the probe token when this request *is* the probe.
        """
        with self._lock:
            state = self._state_for(key)
            if state.state is BreakerState.CLOSED:
                return Admission(True)
            if state.state is BreakerState.OPEN:
                if self._now_ms() - state.opened_at_ms < self.cooldown_ms:
                    return Admission(False)
                state.state = BreakerState.HALF_OPEN
                return Admission(True, self._arm_probe(state))
            # HALF_OPEN: one probe at a time
            if state.probing:
                return Admission(False)
            return Admission(True, self._arm_probe(state))

    def _arm_probe(self, state: _ClassState) -> int:
        """Mark ``state`` as probing and mint its token (lock held)."""
        self._probe_seq += 1
        state.probing = True
        state.probe_token = self._probe_seq
        obs.default_registry().counter("serve.breaker.probes").inc()
        return self._probe_seq

    def record_success(self, key: str) -> None:
        with self._lock:
            state = self._state_for(key)
            state.state = BreakerState.CLOSED
            state.consecutive_failures = 0
            state.probing = False

    def record_failure(self, key: str) -> None:
        """One infrastructure failure (crash/timeout) attributed to ``key``."""
        reg = obs.default_registry()
        with self._lock:
            state = self._state_for(key)
            state.consecutive_failures += 1
            if state.state is BreakerState.HALF_OPEN:
                state.state = BreakerState.OPEN
                state.opened_at_ms = self._now_ms()
                state.probing = False
                self._trips += 1
                reg.counter("serve.breaker.reopened").inc()
            elif (
                state.state is BreakerState.CLOSED
                and state.consecutive_failures >= self.threshold
            ):
                state.state = BreakerState.OPEN
                state.opened_at_ms = self._now_ms()
                self._trips += 1
                reg.counter("serve.breaker.trips").inc()

    def record_abandoned(self, key: str, probe_token: Optional[int]) -> None:
        """The probe ended without a success/failure verdict.

        Uncharged paths (abandoned/stalled futures, timeouts that never
        ran, the degraded fallback, internal errors) neither close nor
        re-open the breaker -- without this, the class would sit
        ``HALF_OPEN`` with ``probing`` set forever, rejecting every later
        request.  Re-open and re-arm the cooldown so the next probe gets
        its turn.  A no-op unless ``probe_token`` still owns the probe,
        so calling it unconditionally in a ``finally`` is safe.
        """
        if probe_token is None:
            return
        with self._lock:
            state = self._classes.get(key)
            if state is None or not state.probing or state.probe_token != probe_token:
                return
            state.probing = False
            state.state = BreakerState.OPEN
            state.opened_at_ms = self._now_ms()
            obs.default_registry().counter("serve.breaker.abandoned").inc()

    # ------------------------------------------------------------------ #

    def state(self, key: str) -> BreakerState:
        with self._lock:
            return self._state_for(key).state

    def retry_after_ms(self, key: str) -> float:
        """Remaining cooldown for an ``OPEN`` class (1 ms floor)."""
        with self._lock:
            state = self._state_for(key)
            if state.state is not BreakerState.OPEN:
                return 1.0
            elapsed = self._now_ms() - state.opened_at_ms
            return max(1.0, self.cooldown_ms - elapsed)

    def rekey(self, old_key: str, new_key: str) -> None:
        """Migrate accumulated state when a class's bootstrap digest key is
        upgraded to its structural hash (first successful extraction)."""
        if old_key == new_key:
            return
        with self._lock:
            old = self._classes.pop(old_key, None)
            if old is None:
                return
            existing = self._classes.get(new_key)
            if existing is None:
                self._classes[new_key] = old
            else:
                existing.consecutive_failures = max(
                    existing.consecutive_failures, old.consecutive_failures
                )
                if old.state is BreakerState.OPEN and existing.state is BreakerState.CLOSED:
                    existing.state = old.state
                    existing.opened_at_ms = old.opened_at_ms

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            open_classes = sorted(
                key
                for key, st in self._classes.items()
                if st.state is not BreakerState.CLOSED
            )
            return {
                "threshold": self.threshold,
                "cooldownMs": self.cooldown_ms,
                "classes": len(self._classes),
                "trips": self._trips,
                "openClasses": open_classes,
            }
