"""Per-workload-class circuit breakers.

One pathological program -- one that reliably crashes or hangs workers --
must not be allowed to burn the pool over and over while every other
request pays the replacement cost.  The :class:`CircuitBreaker` keeps a
tiny state machine per **workload class**:

* the class key is the rename-invariant
  :func:`~repro.perf.memo.structural_hash` once a worker has reported it
  (the service maintains the ``source digest -> structural hash`` alias),
  falling back to the source digest before that -- so renamed copies of
  the same pathological program share one breaker;
* ``CLOSED`` counts *consecutive* infrastructure failures (crashes,
  timeouts); at ``threshold`` the class trips ``OPEN``;
* ``OPEN`` rejects instantly with the remaining cooldown as
  ``Retry-After``;
* after ``cooldown_ms`` the next request becomes the ``HALF_OPEN`` probe:
  success closes the breaker, failure re-opens it for a full cooldown.

The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Any, Callable, Dict

from repro import obs

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class _ClassState:
    __slots__ = ("state", "consecutive_failures", "opened_at_ms", "probing")

    def __init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ms = 0.0
        self.probing = False


class CircuitBreaker:
    """Trip-on-consecutive-failures breaker, one state machine per key."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown_ms: float = 1_000.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._classes: Dict[str, _ClassState] = {}
        self._trips = 0

    def _now_ms(self) -> float:
        return self._clock() * 1000.0

    def _state_for(self, key: str) -> _ClassState:
        state = self._classes.get(key)
        if state is None:
            state = self._classes[key] = _ClassState()
        return state

    # ------------------------------------------------------------------ #

    def allow(self, key: str) -> bool:
        """May a request of class ``key`` proceed right now?

        An ``OPEN`` class whose cooldown has elapsed admits exactly one
        half-open probe; everything else queues behind that probe's
        verdict.
        """
        with self._lock:
            state = self._state_for(key)
            if state.state is BreakerState.CLOSED:
                return True
            if state.state is BreakerState.OPEN:
                if self._now_ms() - state.opened_at_ms < self.cooldown_ms:
                    return False
                state.state = BreakerState.HALF_OPEN
                state.probing = True
                obs.default_registry().counter("serve.breaker.probes").inc()
                return True
            # HALF_OPEN: one probe at a time
            if state.probing:
                return False
            state.probing = True
            obs.default_registry().counter("serve.breaker.probes").inc()
            return True

    def record_success(self, key: str) -> None:
        with self._lock:
            state = self._state_for(key)
            state.state = BreakerState.CLOSED
            state.consecutive_failures = 0
            state.probing = False

    def record_failure(self, key: str) -> None:
        """One infrastructure failure (crash/timeout) attributed to ``key``."""
        reg = obs.default_registry()
        with self._lock:
            state = self._state_for(key)
            state.consecutive_failures += 1
            if state.state is BreakerState.HALF_OPEN:
                state.state = BreakerState.OPEN
                state.opened_at_ms = self._now_ms()
                state.probing = False
                self._trips += 1
                reg.counter("serve.breaker.reopened").inc()
            elif (
                state.state is BreakerState.CLOSED
                and state.consecutive_failures >= self.threshold
            ):
                state.state = BreakerState.OPEN
                state.opened_at_ms = self._now_ms()
                self._trips += 1
                reg.counter("serve.breaker.trips").inc()

    # ------------------------------------------------------------------ #

    def state(self, key: str) -> BreakerState:
        with self._lock:
            return self._state_for(key).state

    def retry_after_ms(self, key: str) -> float:
        """Remaining cooldown for an ``OPEN`` class (1 ms floor)."""
        with self._lock:
            state = self._state_for(key)
            if state.state is not BreakerState.OPEN:
                return 1.0
            elapsed = self._now_ms() - state.opened_at_ms
            return max(1.0, self.cooldown_ms - elapsed)

    def rekey(self, old_key: str, new_key: str) -> None:
        """Migrate accumulated state when a class's bootstrap digest key is
        upgraded to its structural hash (first successful extraction)."""
        if old_key == new_key:
            return
        with self._lock:
            old = self._classes.pop(old_key, None)
            if old is None:
                return
            existing = self._classes.get(new_key)
            if existing is None:
                self._classes[new_key] = old
            else:
                existing.consecutive_failures = max(
                    existing.consecutive_failures, old.consecutive_failures
                )
                if old.state is BreakerState.OPEN and existing.state is BreakerState.CLOSED:
                    existing.state = old.state
                    existing.opened_at_ms = old.opened_at_ms

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            open_classes = sorted(
                key
                for key, st in self._classes.items()
                if st.state is not BreakerState.CLOSED
            )
            return {
                "threshold": self.threshold,
                "cooldownMs": self.cooldown_ms,
                "classes": len(self._classes),
                "trips": self._trips,
                "openClasses": open_classes,
            }
