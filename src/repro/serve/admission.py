"""Admission control: inflight quotas and load shedding.

Under overload a naive service degrades *everyone* -- queues grow, every
request times out, workers churn.  The :class:`AdmissionController`
instead bounds how many requests may be in flight at once and **sheds**
the excess with a typed rejection carrying a ``Retry-After`` estimate, so
admitted requests keep their deadline headroom.

The quota composes with :class:`~repro.resilience.budget.Budget`: a
request is admitted together with a freshly *armed* budget, so queueing
and retries inside the service consume the same deadline the solvers
check -- admission is simply the outermost ring of the same resource
discipline.

The ``Retry-After`` estimate is an EWMA of recent service times scaled by
the current overload ratio: a client that honors it arrives when a slot
is plausibly free instead of hammering a saturated pool.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro import obs
from repro.resilience.budget import Budget

__all__ = ["AdmissionController", "AdmissionTicket"]


class AdmissionTicket:
    """Proof of admission: carries the request's armed deadline budget.

    Release exactly once (idempotent), reporting the request's wall time
    so the controller's service-time estimate tracks reality.
    """

    def __init__(self, controller: "AdmissionController", budget: Budget) -> None:
        self._controller = controller
        self.budget = budget
        self._released = False

    def release(self, wall_ms: Optional[float] = None) -> None:
        if self._released:
            return
        self._released = True
        self._controller._release(wall_ms)


class AdmissionController:
    """Bound the number of concurrently admitted requests."""

    def __init__(
        self,
        max_inflight: int,
        *,
        default_deadline_ms: float = 10_000.0,
        initial_service_ms: float = 50.0,
        ewma_alpha: float = 0.2,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.default_deadline_ms = default_deadline_ms
        self._alpha = ewma_alpha
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted_total = 0
        self._shed_total = 0
        self._service_ms = initial_service_ms

    # ------------------------------------------------------------------ #

    def try_admit(self, deadline_ms: Optional[float] = None) -> Optional[AdmissionTicket]:
        """Admit the request (returning a ticket with an armed
        :class:`Budget`) or return ``None`` -- the caller must then shed
        with :meth:`retry_after_ms`."""
        reg = obs.default_registry()
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed_total += 1
                reg.counter("serve.admission.shed").inc()
                return None
            self._inflight += 1
            self._admitted_total += 1
        reg.counter("serve.admission.admitted").inc()
        budget = Budget(
            deadline_ms=deadline_ms if deadline_ms is not None else self.default_deadline_ms
        ).start()
        return AdmissionTicket(self, budget)

    def _release(self, wall_ms: Optional[float]) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            if wall_ms is not None and wall_ms >= 0:
                self._service_ms += self._alpha * (wall_ms - self._service_ms)

    # ------------------------------------------------------------------ #

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def retry_after_ms(self) -> float:
        """When a shed client should come back: one estimated service time
        per queued-ahead slot, floored at 1 ms."""
        with self._lock:
            overload = max(1.0, (self._inflight + 1) / self.max_inflight)
            return max(1.0, self._service_ms * overload)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "maxInflight": self.max_inflight,
                "inflight": self._inflight,
                "admittedTotal": self._admitted_total,
                "shedTotal": self._shed_total,
                "serviceMsEwma": round(self._service_ms, 3),
            }
