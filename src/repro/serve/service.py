"""The compilation service: admission -> breaker -> supervised dispatch.

:class:`CompileService` is transport-agnostic -- the HTTP daemon, the
loadgen benchmark and the tests all call :meth:`CompileService.handle`
directly.  One request flows through four rings of defense:

1. **Admission** (:mod:`repro.serve.admission`): over quota -> typed
   ``shed`` response (``SV003``) with ``Retry-After``; nobody else's
   deadline is spent on it.
2. **Circuit breaker** (:mod:`repro.serve.breaker`): workload classes
   (keyed by structural hash, bootstrapped by source digest) that keep
   crashing/hanging workers -> instant ``rejected`` (``SV004``).
3. **Supervised dispatch** (:mod:`repro.serve.supervisor`): the request
   is compiled in a pool worker under its deadline.  A worker crash
   (``SV001``) replaces the pool and retries with exponential backoff and
   seeded jitter; a hang (``SV002``) SIGKILLs the pool generation.
4. **Degraded fallback** (``SV005``): the *final* attempt never errors on
   infrastructure -- it compiles in-process through the resilience
   ladder's lower rungs under a small grace budget, so the client always
   receives a runnable (possibly original) program with a
   :class:`~repro.resilience.report.RecoveryReport`.

Typed *compile* errors (parse/validation/fusion/budget) are deterministic
and come back from the worker as well-formed ``error`` responses -- they
are never retried and never trip the breaker.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, CancelledError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro import obs
from repro.serve import worker as serve_worker
from repro.serve.supervisor import SupervisedPool
from repro.serve.wire import (
    SV001,
    SV002,
    SV003,
    SV004,
    SV005,
    SV006,
    SV007,
    CompileRequest,
    CompileResponse,
    WireError,
    error_payload,
)

__all__ = ["CompileService", "ServeConfig"]

#: Cap on the ``source digest -> structural hash`` alias map (LRU): a
#: long-running daemon fed unique programs must not grow without bound.
#: Losing an alias is benign -- the class falls back to its digest key
#: until a worker re-reports the structural hash.
MAX_HASH_ALIASES = 65_536


class _AbandonedFuture(Exception):
    """Our pool generation was replaced while the future was unresolved."""


class _StalledFuture(Exception):
    """The future sat pending past the stall cap; presumed lost."""


@dataclass
class ServeConfig:
    """Tunables for one :class:`CompileService` (docs/SERVING.md)."""

    #: Pool worker processes.
    workers: int = 2
    #: Admission quota; ``None`` = ``workers * 4`` (two dispatch rounds of
    #: headroom per worker before shedding starts).
    max_inflight: Optional[int] = None
    #: Deadline applied to requests that do not carry their own.
    default_deadline_ms: float = 10_000.0
    #: Worker dispatch attempts per request (the last failure falls back
    #: to the in-process ladder instead of erroring).
    max_attempts: int = 3
    #: Exponential backoff between crash retries: ``base * 2**(n-1)``
    #: capped at ``cap``, stretched by up to ``jitter`` (seeded).
    backoff_base_ms: float = 25.0
    backoff_cap_ms: float = 1_000.0
    backoff_jitter: float = 0.5
    #: Circuit breaker: consecutive infrastructure failures per workload
    #: class before tripping, and how long the class stays open.
    breaker_threshold: int = 3
    breaker_cooldown_ms: float = 1_000.0
    #: Weakest rung the degraded fallback accepts, and the grace budget it
    #: runs under when the request's own deadline is already spent.
    fallback_min_rung: str = "none"
    fallback_grace_ms: float = 250.0
    #: Below this remaining budget a worker round-trip is pointless.
    min_attempt_ms: float = 5.0
    #: A future still *pending* after this long is presumed lost (admission
    #: bounds the backlog, so a healthy pool drains far faster) and is
    #: resubmitted without penalty; a second stall replaces the pool.
    stall_ms: float = 2_000.0
    #: Honor request ``fault`` specs in workers (chaos testing only).
    allow_faults: bool = False
    #: Seed for the backoff-jitter rng (deterministic load tests).
    seed: int = 0
    #: Default ladder variant (a ``LADDER_VARIANTS`` name or rung-label
    #: sequence) applied to requests that carry no ``ladder`` of their
    #: own -- on worker dispatch *and* the in-process fallback alike, so
    #: both paths compile the same descent (``None`` = full).
    ladder: Optional[Union[str, Sequence[str]]] = field(default=None)
    #: Execution backend (:mod:`repro.core.backends`) threaded into worker
    #: and fallback session options; requests carrying ``backend`` win.
    #: ``"auto"`` defers to the execution planner (:mod:`repro.plan`) --
    #: the worker resolves it and echoes the pick on the response.
    backend: str = "interp"
    #: Path of the shared L2 compile store (:mod:`repro.store`).  Stamped
    #: onto requests that carry no ``storePath`` of their own, so every
    #: worker process (and the in-process fallback) opens its own handle
    #: on one daemon-wide sqlite file.  ``None`` = no disk tier.
    store_path: Optional[str] = None

    def resolved_max_inflight(self) -> int:
        return self.max_inflight if self.max_inflight is not None else self.workers * 4


class CompileService:
    """A fault-tolerant compile service over a supervised process pool."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        from repro.serve.admission import AdmissionController
        from repro.serve.breaker import CircuitBreaker

        self.config = config if config is not None else ServeConfig()
        # resolve before the pool exists so a bad variant name fails fast
        # without leaking worker processes
        self._ladder_labels = self._resolve_config_ladder()
        from repro.core.backends import backend_names

        if self.config.backend not in backend_names() + ("auto",):
            raise ValueError(
                f"unknown execution backend {self.config.backend!r}; "
                f"known: {list(backend_names()) + ['auto']}"
            )
        self.pool = SupervisedPool(
            self.config.workers,
            initializer=serve_worker.init_worker,
            initargs=(self.config.allow_faults,),
        )
        self.admission = AdmissionController(
            self.config.resolved_max_inflight(),
            default_deadline_ms=self.config.default_deadline_ms,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_ms=self.config.breaker_cooldown_ms,
        )
        self._rng = random.Random(self.config.seed)
        self._rng_lock = threading.Lock()
        self._alias_lock = threading.Lock()
        self._hash_by_digest: "OrderedDict[str, str]" = OrderedDict()
        self._started = time.monotonic()

    def _resolve_config_ladder(self) -> Optional[Tuple[str, ...]]:
        """Resolve ``config.ladder`` to explicit rung labels once, so a
        bad variant name fails at construction and the same labels ride
        the wire to workers that the fallback compiles with."""
        if self.config.ladder is None:
            return None
        from repro.core.session import SessionOptions

        return SessionOptions(ladder=self.config.ladder).ladder_labels()

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #

    def handle_dict(self, req_dict: Any) -> Dict[str, Any]:
        """Transport-facing entry: dict in, dict out, never raises."""
        try:
            req = CompileRequest.from_dict(req_dict)
        except WireError as exc:
            obs.default_registry().counter("serve.malformed").inc()
            name = "program"
            if isinstance(req_dict, dict):
                name = str(req_dict.get("name", "program"))
            return CompileResponse(
                status="error",
                name=name,
                error=error_payload(exc),
                code=SV006,
            ).to_dict()
        return self.handle(req).to_dict()

    def handle(self, req: CompileRequest) -> CompileResponse:
        """Serve one request through all four rings; always returns a
        well-formed :class:`CompileResponse`."""
        reg = obs.default_registry()
        reg.counter("serve.requests").inc()
        t0 = time.perf_counter()
        with obs.trace_span("serve.request", request=req.request_id, program=req.name):
            ticket = self.admission.try_admit(req.deadline_ms)
            if ticket is None:
                resp = CompileResponse(
                    status="shed",
                    name=req.name,
                    request_id=req.request_id,
                    source_digest=req.digest,
                    code=SV003,
                    retry_after_ms=round(self.admission.retry_after_ms(), 3),
                    notes=["admission control: inflight quota exhausted"],
                )
            else:
                probe_token: Optional[int] = None
                try:
                    key = self._class_key(req.digest)
                    admit = self.breaker.allow(key)
                    if not admit:
                        reg.counter("serve.rejected").inc()
                        resp = CompileResponse(
                            status="rejected",
                            name=req.name,
                            request_id=req.request_id,
                            source_digest=req.digest,
                            code=SV004,
                            retry_after_ms=round(self.breaker.retry_after_ms(key), 3),
                            notes=[f"circuit breaker open for workload class {key}"],
                        )
                    else:
                        probe_token = admit.probe_token
                        resp = self._dispatch(req, ticket.budget, key)
                except Exception as exc:  # supervisor must never crash
                    reg.counter("serve.internal_errors").inc()
                    resp = CompileResponse(
                        status="error",
                        name=req.name,
                        request_id=req.request_id,
                        source_digest=req.digest,
                        error=error_payload(exc),
                        code=SV007,
                    )
                finally:
                    # a half-open probe that ended on an uncharged path
                    # (abandoned/stalled future, fallback, internal error)
                    # must not leave the class stuck probing forever; the
                    # key is re-resolved because the fallback may have
                    # rekeyed the class mid-request
                    self.breaker.record_abandoned(
                        self._class_key(req.digest), probe_token
                    )
                    ticket.release((time.perf_counter() - t0) * 1000.0)
        resp.total_ms = round((time.perf_counter() - t0) * 1000.0, 3)
        reg.counter(f"serve.status.{resp.status}").inc()
        reg.histogram("serve.latency_ms").observe(resp.total_ms)
        return resp

    # ------------------------------------------------------------------ #
    # dispatch: retry + backoff + pool replacement
    # ------------------------------------------------------------------ #

    def _dispatch(
        self, req: CompileRequest, budget: Any, key: str
    ) -> CompileResponse:
        reg = obs.default_registry()
        attempts = crashes = timeouts = stalls = 0
        last_code: Optional[str] = None
        queue_ms: Optional[float] = None
        t_start = time.perf_counter()
        while attempts < self.config.max_attempts:
            remaining = budget.remaining_ms()
            if remaining is not None and remaining <= self.config.min_attempt_ms:
                last_code = last_code or SV002
                break
            attempts += 1
            wire = req.to_dict()
            wire["attempt"] = attempts - 1
            wire["deadlineMs"] = remaining
            if req.ladder is None and self._ladder_labels is not None:
                # the config-level default descent rides the wire so the
                # worker compiles the same ladder the fallback would
                wire["ladder"] = list(self._ladder_labels)
            if wire.get("backend", "interp") == "interp":
                # config-level backend applies to requests that kept the
                # wire default; an explicit non-default request wins
                wire["backend"] = self.config.backend
            if wire.get("storePath") is None and self.config.store_path is not None:
                # the daemon-wide L2 store rides the wire; each worker
                # opens its own handle on the shared sqlite file
                wire["storePath"] = self.config.store_path
            if queue_ms is None:
                queue_ms = round((time.perf_counter() - t_start) * 1000.0, 3)
            future, generation = self.pool.submit(
                serve_worker.compile_request, wire
            )
            ran = {"running": False}
            try:
                resp_dict = self._await(future, generation, remaining, ran)
                resp = CompileResponse.from_dict(resp_dict)
            except FuturesTimeoutError:
                timeouts += 1
                reg.counter("serve.timeouts").inc()
                last_code = SV002
                if ran["running"] or future.running():
                    # the request is *running* on a hung worker: SIGKILL
                    # the generation so its siblings re-dispatch promptly
                    self.pool.replace(generation, "hung-worker")
                    self.breaker.record_failure(key)
                continue  # deadline is spent; the loop exits to fallback
            except _AbandonedFuture:
                # our generation died under us; the pool is already fresh
                # and we never learned whether *we* were the cause, so the
                # breaker is not charged
                crashes += 1
                reg.counter("serve.worker_crashes").inc()
                last_code = SV001
                if attempts < self.config.max_attempts:
                    reg.counter("serve.retries").inc()
                    self._backoff(attempts, budget)
                continue
            except _StalledFuture:
                stalls += 1
                reg.counter("serve.stalls").inc()
                last_code = SV002
                if stalls >= 2:
                    # one lost item can be bad luck; two means the pool is
                    # not draining -- replace it
                    self.pool.replace(generation, "stalled-dispatch")
                if attempts < self.config.max_attempts:
                    reg.counter("serve.retries").inc()
                continue
            except (BrokenExecutor, CancelledError, EOFError, OSError):
                crashes += 1
                reg.counter("serve.worker_crashes").inc()
                last_code = SV001
                self.pool.replace(generation, "worker-crash")
                if ran["running"]:
                    # we were on a worker when the pool died -- plausibly
                    # the culprit; queued bystanders are not charged
                    self.breaker.record_failure(key)
                if attempts < self.config.max_attempts:
                    reg.counter("serve.retries").inc()
                    self._backoff(attempts, budget)
                continue
            except WireError:
                # a worker answered gibberish; treat like a crash
                crashes += 1
                reg.counter("serve.worker_crashes").inc()
                last_code = SV001
                self.pool.replace(generation, "worker-babble")
                self.breaker.record_failure(key)
                continue
            # a well-formed worker response -- the infrastructure is fine,
            # whatever the compile outcome was
            self.breaker.record_success(key)
            self._learn_hash(req.digest, resp.structural_hash)
            if attempts > 1:
                resp.notes.append(
                    f"succeeded on attempt {attempts} after "
                    f"{crashes} crash(es) and {timeouts} timeout(s)"
                )
            return self._finalize(resp, attempts, crashes, timeouts, queue_ms)
        return self._fallback(
            req, budget, attempts, crashes, timeouts, last_code, queue_ms
        )

    def _await(
        self,
        future: Any,
        generation: int,
        remaining: Optional[float],
        ran: Dict[str, bool],
    ) -> Any:
        """Wait for a worker future, but never trust it blindly.

        Two pathologies make a plain ``future.result(deadline)`` waste the
        request's whole budget: a future of a *replaced* generation may
        never be notified of the break (the SIGKILLed executor can lose
        the race between ``cancel_futures`` and its queue-management
        thread), and a pool can silently lose a work item.  So wait in
        short slices, noting whether the future ever actually *runs*
        (``ran``, the breaker-attribution signal), and bail out early:

        * stale generation + unresolved -> :class:`_AbandonedFuture`;
        * still pending past ``stall_ms`` -> :class:`_StalledFuture`
          (admission bounds the backlog, so a healthy pool would have
          started it long before);
        * deadline exhausted -> :class:`FuturesTimeoutError`.

        No future is ever ``cancel()``-ed here -- a cancelled future makes
        a concurrently breaking executor's ``terminate_broken`` raise and
        strand its siblings (see :meth:`SupervisedPool._terminate`).
        """
        t0 = time.perf_counter()
        deadline = t0 + remaining / 1000.0 if remaining is not None else None
        stall_s = self.config.stall_ms / 1000.0
        while True:
            if future.running():
                ran["running"] = True
            slice_s = 0.05
            if deadline is not None:
                left = deadline - time.perf_counter()
                if left <= 0:
                    raise FuturesTimeoutError()
                slice_s = min(slice_s, left)
            try:
                return future.result(timeout=slice_s)
            except FuturesTimeoutError:
                if future.running():
                    ran["running"] = True
                if deadline is not None and time.perf_counter() >= deadline:
                    raise
                if self.pool.generation != generation and not future.done():
                    # do NOT cancel: the dying executor's terminate_broken
                    # may be about to set_exception on this future, and a
                    # concurrent cancel makes that raise InvalidStateError
                    # inside its management thread (CPython 3.11)
                    raise _AbandonedFuture(
                        f"pool generation {generation} was replaced"
                    ) from None
                if (
                    not ran["running"]
                    and not future.done()
                    and time.perf_counter() - t0 >= stall_s
                ):
                    # no cancel (see _terminate): if the item does run
                    # later, the compile is deterministic and idempotent,
                    # so a duplicate execution only wastes a slot
                    raise _StalledFuture(
                        f"pending for {self.config.stall_ms:.0f} ms"
                    ) from None

    def _backoff(self, attempt: int, budget: Any) -> None:
        """Exponential backoff with seeded jitter, clamped to the budget."""
        delay_ms = min(
            self.config.backoff_cap_ms,
            self.config.backoff_base_ms * (2 ** (attempt - 1)),
        )
        with self._rng_lock:
            delay_ms *= 1.0 + self.config.backoff_jitter * self._rng.random()
        remaining = budget.remaining_ms()
        if remaining is not None:
            delay_ms = min(delay_ms, max(0.0, remaining - self.config.min_attempt_ms))
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)

    # ------------------------------------------------------------------ #
    # the degraded fallback (SV005)
    # ------------------------------------------------------------------ #

    def _fallback(
        self,
        req: CompileRequest,
        budget: Any,
        attempts: int,
        crashes: int,
        timeouts: int,
        last_code: Optional[str],
        queue_ms: Optional[float],
    ) -> CompileResponse:
        from repro.core.session import Session, SessionOptions
        from repro.perf.memo import structural_hash
        from repro.resilience.budget import Budget, BudgetExceededError

        reg = obs.default_registry()
        reg.counter("serve.fallback").inc()
        remaining = budget.remaining_ms()
        grace = max(
            remaining if remaining is not None else 0.0,
            self.config.fallback_grace_ms,
        )
        tracer = obs.Tracer()
        note = (
            f"served by the in-process degradation ladder after {attempts} "
            f"worker attempt(s): {crashes} crash(es), {timeouts} timeout(s)"
        )
        try:
            session = Session(
                options=SessionOptions(
                    min_rung=self.config.fallback_min_rung,
                    ladder=req.ladder if req.ladder is not None else self.config.ladder,
                    backend=req.backend if req.backend != "interp" else self.config.backend,
                    prune_edges=req.prune_edges,
                    verify_execution=req.verify_execution,
                    store_path=(
                        req.store_path
                        if req.store_path is not None
                        else self.config.store_path
                    ),
                ),
                budget=Budget(deadline_ms=grace).start(),
                tracer=tracer,
            )
            out = session.fuse_program_resilient(req.source)
        except BudgetExceededError:
            # even the grace budget ran dry (a loaded box, not a property
            # of the program) -- take the cheapest rungs with no clock at
            # all rather than break the "fallback never errors on
            # infrastructure" contract
            reg.counter("serve.fallback.unbudgeted").inc()
            note += "; grace budget exhausted, retried unbudgeted on the conservative ladder"
            try:
                session = Session(
                    options=SessionOptions(
                        min_rung=self.config.fallback_min_rung,
                        ladder="conservative",
                        backend=req.backend if req.backend != "interp" else self.config.backend,
                        prune_edges=req.prune_edges,
                        verify_execution=req.verify_execution,
                        store_path=(
                            req.store_path
                            if req.store_path is not None
                            else self.config.store_path
                        ),
                    ),
                    tracer=tracer,
                )
                out = session.fuse_program_resilient(req.source)
            except Exception as exc:
                return self._finalize(
                    self._fallback_error(req, exc, last_code, tracer, note),
                    attempts, crashes, timeouts, queue_ms,
                )
        except Exception as exc:
            return self._finalize(
                self._fallback_error(req, exc, last_code, tracer, note),
                attempts, crashes, timeouts, queue_ms,
            )
        resp = CompileResponse(
            status="degraded",
            name=req.name,
            request_id=req.request_id,
            rung=out.rung.label,
            parallelism=out.resilient.parallelism.value,
            structural_hash=structural_hash(out.mldg),
            source_digest=req.digest,
            recovery=out.report.to_dict(),
            emitted=out.emitted_code() if req.emit else None,
            notes=[note, *out.notes],
            diagnostics=[d.to_dict() for d in out.diagnostics],
            code=SV005,
            trace_id=tracer.trace_id,
        )
        # same precedence as worker dispatch: explicit request backend
        # wins, else the daemon default; "auto" resolves via the planner
        serve_worker.resolve_backend(
            req.backend if req.backend != "interp" else self.config.backend,
            session, out, resp,
        )
        self._learn_hash(req.digest, resp.structural_hash)
        return self._finalize(resp, attempts, crashes, timeouts, queue_ms)

    @staticmethod
    def _fallback_error(
        req: CompileRequest,
        exc: BaseException,
        last_code: Optional[str],
        tracer: Any,
        note: str,
    ) -> CompileResponse:
        return CompileResponse(
            status="error",
            name=req.name,
            request_id=req.request_id,
            source_digest=req.digest,
            error=error_payload(exc),
            code=last_code,
            trace_id=tracer.trace_id,
            notes=[note],
        )

    @staticmethod
    def _finalize(
        resp: CompileResponse,
        attempts: int,
        crashes: int,
        timeouts: int,
        queue_ms: Optional[float],
    ) -> CompileResponse:
        resp.attempts = attempts
        resp.retries = max(0, attempts - 1)
        resp.worker_crashes = crashes
        resp.timeouts = timeouts
        resp.queue_ms = queue_ms
        return resp

    # ------------------------------------------------------------------ #
    # workload-class bookkeeping
    # ------------------------------------------------------------------ #

    def _class_key(self, digest: str) -> str:
        with self._alias_lock:
            key = self._hash_by_digest.get(digest)
            if key is None:
                return digest
            self._hash_by_digest.move_to_end(digest)
            return key

    def _learn_hash(self, digest: str, structural: Optional[str]) -> None:
        """Upgrade a digest-keyed class to its rename-invariant structural
        hash the first time a worker reports it (LRU-capped)."""
        if structural is None:
            return
        with self._alias_lock:
            known = self._hash_by_digest.get(digest)
            if known == structural:
                self._hash_by_digest.move_to_end(digest)
                return
            while len(self._hash_by_digest) >= MAX_HASH_ALIASES:
                self._hash_by_digest.popitem(last=False)
            self._hash_by_digest[digest] = structural
        self.breaker.rekey(digest, structural)

    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Any]:
        """Operational state for ``/statz`` and the loadgen report."""
        from repro.plan import plan_snapshot

        snap: Dict[str, Any] = {
            "uptimeS": round(time.monotonic() - self._started, 3),
            "workers": self.config.workers,
            "poolGeneration": self.pool.generation,
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "workloadClasses": len(self._hash_by_digest),
            # planner decisions made in *this* process (the fallback path;
            # worker-side plans travel in response envelopes) plus the
            # configured default backend the dispatch stamps
            "plan": {"backend": self.config.backend, **plan_snapshot()},
        }
        if self.config.store_path is not None:
            # file-level stats: entries and storedHits aggregate the whole
            # fleet's traffic (worker-local counters never leave their
            # process, but every hit bumps the row in the shared file)
            from repro.store import open_store

            snap["store"] = open_store(self.config.store_path).stats().to_dict()
        return snap

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def _unused() -> Tuple[str, ...]:  # pragma: no cover - keeps SV00x exported
    return (SV001, SV002, SV003, SV004, SV005, SV006, SV007)
