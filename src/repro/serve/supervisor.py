"""Worker-pool supervision: crash detection and pool replacement.

:class:`SupervisedPool` wraps a :class:`~concurrent.futures.ProcessPoolExecutor`
with a **generation counter**.  Every submission records the generation it
ran under; when a caller observes an infrastructure fault (broken pool
after a worker SIGKILL, or a request timeout on a hung worker) it calls
:meth:`SupervisedPool.replace` with that generation.  The first caller to
report a given generation wins and performs the replacement -- SIGKILLing
the old generation's processes (a hung worker cannot block SIGKILL) and
standing up a fresh executor; late reporters and reports about
already-replaced generations are no-ops.

In-flight requests of the replaced generation see their futures fail with
``BrokenProcessPool`` and *re-dispatch themselves*
through the service's retry loop -- supervision state lives entirely in
this one lock-protected object, so there is no central dispatcher to
crash.
"""

from __future__ import annotations

import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Callable, Optional, Tuple

from repro import obs

__all__ = ["SupervisedPool"]


class SupervisedPool:
    """A process pool that survives the death of any of its workers."""

    def __init__(
        self,
        workers: int = 2,
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._lock = threading.Lock()
        self._generation = 0
        self._closed = False
        self._pool = self._make_executor()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    # ------------------------------------------------------------------ #

    @property
    def generation(self) -> int:
        """How many times the pool has been replaced (0 = the original)."""
        with self._lock:
            return self._generation

    def submit(self, fn: Callable[..., Any], *args: Any) -> Tuple[Future, int]:
        """Submit work; returns ``(future, generation)``.

        The generation must accompany any later :meth:`replace` call so
        stale failure reports cannot kill a healthy replacement pool.

        A worker SIGKILL breaks the executor *before* any observer calls
        :meth:`replace`; in that window ``ProcessPoolExecutor.submit``
        raises ``BrokenProcessPool`` synchronously.  That is handled right
        here, under the lock (so the generation bookkeeping cannot race):
        the broken executor is swapped for a fresh one and the submission
        retried -- callers never see a broken-at-submit error.
        """
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("SupervisedPool is shut down")
                try:
                    return self._pool.submit(fn, *args), self._generation
                except BrokenExecutor:
                    old = self._pool
                    self._generation += 1
                    self._pool = self._make_executor()
            reg = obs.default_registry()
            reg.counter("serve.pool.replacements").inc()
            reg.counter("serve.pool.replaced.broken-at-submit").inc()
            self._terminate(old)

    def replace(self, generation: int, reason: str = "worker-fault") -> bool:
        """Replace the pool if ``generation`` is still current.

        Returns ``True`` when this call performed the replacement, ``False``
        when another caller already did (or the pool is shut down).  The
        old generation's worker processes are SIGKILLed -- that is the only
        signal guaranteed to reach a hung worker -- which makes the dying
        executor fail all its pending futures with ``BrokenProcessPool``,
        so their submitters retry promptly.
        """
        with self._lock:
            if self._closed or generation != self._generation:
                return False
            old = self._pool
            self._generation += 1
            self._pool = self._make_executor()
        reg = obs.default_registry()
        reg.counter("serve.pool.replacements").inc()
        reg.counter(f"serve.pool.replaced.{reason}").inc()
        self._terminate(old)
        return True

    @staticmethod
    def _terminate(executor: ProcessPoolExecutor) -> None:
        """Hard-stop one executor: kill its processes and let its own
        break-detection fail every pending future.

        Deliberately NOT ``cancel_futures=True``: a future we cancel is a
        future the executor's ``terminate_broken`` will later try to
        ``set_exception`` on, which raises ``InvalidStateError`` inside its
        queue-management thread (CPython 3.11) and silently strands every
        *other* pending future without a result -- their submitters would
        then wait out their whole deadline.  Killing the processes is
        enough: the dead-process sentinel triggers ``terminate_broken``,
        which resolves all pending futures with ``BrokenProcessPool``.
        """
        processes = list(getattr(executor, "_processes", {}).values())
        for proc in processes:
            try:
                proc.kill()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            executor.shutdown(wait=False)
        except Exception:  # pragma: no cover - defensive
            pass

    def shutdown(self) -> None:
        """Stop accepting work and tear the current pool down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            old = self._pool
        self._terminate(old)

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SupervisedPool workers={self.workers} "
            f"generation={self.generation}>"
        )
