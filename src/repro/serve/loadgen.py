"""The serving benchmark: ``repro-fuse loadgen`` -> ``BENCH_serve.json``.

Fires a closed-loop, multi-threaded stream of compile requests at a
service -- either a daemon it spawns itself (the default; chaos allowed)
or an already-running one via ``--url`` -- and reports throughput, p50/p99
latency, and the full outcome breakdown (ok/degraded/error/shed/rejected,
retries, worker crashes, timeouts).

The chaos knobs are the acceptance scenario from docs/SERVING.md: with
``chaos_kills``/``chaos_hangs`` > 0 the first so-many requests carry
seeded :class:`~repro.resilience.faults.WorkerCrash` /
:class:`~repro.resilience.faults.WorkerHang` specs, and the run asserts
that *every* response still comes back well-formed -- fused, ladder-
degraded with a recovery report, or a typed shed/rejection.

Every request mixes over the gallery workloads (paper Figure 2, the IIR
filter, and the six extended kernels), so the stream exercises cyclic,
acyclic and partitioned strategies at once.

With ``store_path`` set the spawned daemon shares a persistent store
(:mod:`repro.store`) across its workers, and ``warm_passes > 1`` replays
the same request stream again against the same daemon: the report then
carries a per-pass latency block (``passes``) plus the store's counters
(inside ``service.store``), so cold-vs-warm serving cost is one loadgen
invocation -- see docs/CACHING.md.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LoadgenOptions", "run_loadgen", "BENCH_SCHEMA"]

BENCH_SCHEMA = "repro-bench-serve/1"


@dataclass
class LoadgenOptions:
    """Knobs for one loadgen run (CLI flags map 1:1)."""

    requests: int = 50
    concurrency: int = 8
    workers: int = 2
    deadline_ms: float = 10_000.0
    resilient_every: int = 3  # every Nth request runs the resilient pipeline
    chaos_kills: int = 0  # requests carrying a seeded WorkerCrash
    chaos_hangs: int = 0  # requests carrying a seeded WorkerHang
    hang_s: float = 30.0  # how long an injected hang sleeps (deadline cuts it)
    hang_deadline_ms: float = 1_500.0  # tighter deadline for hang requests
    seed: int = 0
    url: Optional[str] = None  # target a running daemon instead of spawning
    emit: bool = False  # carrying emitted code inflates payloads; off for bench
    max_inflight: Optional[int] = None
    out: Optional[str] = None  # write BENCH_serve.json here
    store_path: Optional[str] = None  # shared persistent store for the daemon
    warm_passes: int = 1  # replay the stream N times (store warm-up measure)
    auto_every: int = 0  # every Nth request asks backend="auto" (0 = never)


def _workloads() -> List[Tuple[str, str]]:
    """(name, source) pairs the request stream cycles over."""
    from repro.gallery.common import iir2d_code
    from repro.gallery.extended import extended_kernels
    from repro.gallery.paper import figure2_code

    pairs = [("figure2", figure2_code()), ("iir2d", iir2d_code())]
    pairs.extend((k.key, k.code) for k in extended_kernels())
    return pairs


def _build_requests(opts: LoadgenOptions) -> List[Dict[str, Any]]:
    """The deterministic request stream (chaos specs up front, so the
    faults land while the pool is busiest)."""
    from repro.serve.wire import request_from_program

    workloads = _workloads()
    reqs: List[Dict[str, Any]] = []
    for k in range(opts.requests):
        name, source = workloads[k % len(workloads)]
        fault: Optional[Dict[str, Any]] = None
        deadline = opts.deadline_ms
        if k < opts.chaos_kills:
            # probability 0.5: the seeded rng kills some attempts and
            # spares others, exercising the retry path deterministically
            fault = {
                "injector": "WorkerCrash",
                "seed": opts.seed + k,
                "probability": 0.5,
            }
        elif k < opts.chaos_kills + opts.chaos_hangs:
            fault = {
                "injector": "WorkerHang",
                "seed": opts.seed + k,
                "hang_s": opts.hang_s,
            }
            deadline = opts.hang_deadline_ms
        req = request_from_program(
            f"{name}#{k}",
            source,
            resilient=(k % max(1, opts.resilient_every) == 0),
            deadline_ms=deadline,
            fault=fault,
            backend=(
                "auto"
                if opts.auto_every > 0 and k % opts.auto_every == 0
                else "interp"
            ),
        )
        d = req.to_dict()
        d["emit"] = opts.emit
        reqs.append(d)
    return reqs


@dataclass
class _Outcome:
    response: Dict[str, Any]
    latency_ms: float
    http_status: Optional[int] = None


class _Client:
    """Dispatch seam: in-process service, spawned daemon, or remote URL."""

    def __init__(self, opts: LoadgenOptions) -> None:
        self._opts = opts
        self._daemon = None
        self._url = opts.url
        if self._url is None:
            from repro.serve.daemon import ServeDaemon
            from repro.serve.service import ServeConfig

            chaos = opts.chaos_kills > 0 or opts.chaos_hangs > 0
            self._daemon = ServeDaemon(
                ServeConfig(
                    workers=opts.workers,
                    max_inflight=opts.max_inflight,
                    default_deadline_ms=opts.deadline_ms,
                    allow_faults=chaos,
                    seed=opts.seed,
                    store_path=opts.store_path,
                )
            ).start()
            self._url = self._daemon.url

    @property
    def url(self) -> str:
        assert self._url is not None
        return self._url

    def send(self, req: Dict[str, Any]) -> _Outcome:
        import urllib.error
        import urllib.request

        data = json.dumps(req).encode("utf-8")
        http_req = urllib.request.Request(
            self.url + "/v1/compile",
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        t0 = time.perf_counter()
        try:
            with urllib.request.urlopen(http_req, timeout=120) as resp:
                body = json.loads(resp.read())
                status = resp.status
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            status = exc.code
        return _Outcome(
            response=body,
            latency_ms=(time.perf_counter() - t0) * 1000.0,
            http_status=status,
        )

    def snapshot(self) -> Optional[Dict[str, Any]]:
        if self._daemon is not None:
            return self._daemon.service.snapshot()
        return None

    def close(self) -> None:
        if self._daemon is not None:
            self._daemon.shutdown()


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, max(0, round(q * (len(sorted_ms) - 1))))
    return sorted_ms[int(idx)]


def run_loadgen(opts: Optional[LoadgenOptions] = None) -> Dict[str, Any]:
    """Run the benchmark; returns (and optionally writes) the report."""
    from repro.serve.wire import CompileResponse

    opts = opts if opts is not None else LoadgenOptions()
    requests = _build_requests(opts)
    client = _Client(opts)
    passes = max(1, opts.warm_passes)
    pass_blocks: List[Dict[str, Any]] = []
    done: List[_Outcome] = []

    def run_pass() -> Tuple[List[_Outcome], float]:
        outcomes: List[Optional[_Outcome]] = [None] * len(requests)
        cursor = {"next": 0}
        lock = threading.Lock()

        def drain() -> None:
            while True:
                with lock:
                    k = cursor["next"]
                    if k >= len(requests):
                        return
                    cursor["next"] = k + 1
                outcomes[k] = client.send(requests[k])

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=drain, name=f"loadgen-{i}", daemon=True)
            for i in range(max(1, opts.concurrency))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        got = [o for o in outcomes if o is not None]
        assert len(got) == len(requests), "every request must produce an outcome"
        return got, wall

    wall_s = 0.0
    try:
        for p in range(passes):
            got, pass_wall = run_pass()
            done.extend(got)
            wall_s += pass_wall
            lat = sorted(o.latency_ms for o in got)
            pass_blocks.append({
                "pass": p,
                "wallS": round(pass_wall, 3),
                "latencyMs": {
                    "p50": round(_percentile(lat, 0.50), 3),
                    "p99": round(_percentile(lat, 0.99), 3),
                    "mean": round(sum(lat) / len(lat), 3) if lat else 0.0,
                },
            })
        service_snapshot = client.snapshot()
    finally:
        client.close()
    by_status: Dict[str, int] = {}
    by_backend: Dict[str, int] = {}
    plan_sample: Optional[Dict[str, Any]] = None
    malformed: List[str] = []
    retries = crashes = timeouts = 0
    for o in done:
        resp = CompileResponse.from_dict(o.response)
        by_status[resp.status] = by_status.get(resp.status, 0) + 1
        if resp.backend is not None:
            by_backend[resp.backend] = by_backend.get(resp.backend, 0) + 1
        if plan_sample is None and resp.plan is not None:
            plan_sample = resp.plan
        retries += resp.retries
        crashes += resp.worker_crashes
        timeouts += resp.timeouts
        if not resp.well_formed:
            malformed.append(resp.name)
    latencies = sorted(o.latency_ms for o in done)
    from repro.perf.bench import platform_block

    report = {
        "schema": BENCH_SCHEMA,
        "platform": platform_block(),
        "options": {
            "requests": opts.requests,
            "concurrency": opts.concurrency,
            "workers": opts.workers,
            "deadlineMs": opts.deadline_ms,
            "chaosKills": opts.chaos_kills,
            "chaosHangs": opts.chaos_hangs,
            "seed": opts.seed,
            "url": opts.url,
            "storePath": opts.store_path,
            "warmPasses": passes,
            "autoEvery": opts.auto_every,
        },
        "totalRequests": len(done),
        "wallS": round(wall_s, 3),
        "requestsPerSecond": round(len(done) / wall_s, 3) if wall_s > 0 else 0.0,
        "latencyMs": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p90": round(_percentile(latencies, 0.90), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
            "mean": round(sum(latencies) / len(latencies), 3) if latencies else 0.0,
        },
        "byStatus": dict(sorted(by_status.items())),
        "retries": retries,
        "workerCrashes": crashes,
        "timeouts": timeouts,
        "wellFormed": len(done) - len(malformed),
        "malformed": malformed,
        "passes": pass_blocks,
        "service": service_snapshot,
        "plan": {
            # resolved execution backends echoed by workers; "auto"
            # requests carry the planner's concrete pick + rationale
            "autoRequests": sum(
                1 for r in requests if r.get("backend") == "auto"
            ) * passes,
            "byBackend": dict(sorted(by_backend.items())),
            "sample": plan_sample,
        },
    }
    if opts.out:
        with open(opts.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def render_report_text(report: Dict[str, Any]) -> str:
    """A terse human summary of one loadgen report."""
    lat = report["latencyMs"]
    parts = [
        f"loadgen: {report['options']['requests']} requests, "
        f"{report['requestsPerSecond']} req/s over {report['wallS']}s",
        f"  latency ms: p50={lat['p50']} p90={lat['p90']} "
        f"p99={lat['p99']} max={lat['max']}",
        "  outcomes: "
        + ", ".join(f"{k}={v}" for k, v in report["byStatus"].items()),
        f"  retries={report['retries']} crashes={report['workerCrashes']} "
        f"timeouts={report['timeouts']} "
        f"well-formed={report['wellFormed']}"
        f"/{report.get('totalRequests', report['options']['requests'])}",
    ]
    if len(report.get("passes", [])) > 1:
        for block in report["passes"]:
            lat = block["latencyMs"]
            parts.append(
                f"  pass {block['pass']}: wall={block['wallS']}s "
                f"p50={lat['p50']} p99={lat['p99']} mean={lat['mean']}"
            )
    plan = report.get("plan") or {}
    if plan.get("byBackend"):
        parts.append(
            f"  plan: {plan['autoRequests']} auto request(s); backends "
            + ", ".join(f"{k}={v}" for k, v in plan["byBackend"].items())
        )
    store = (report.get("service") or {}).get("store")
    if store:
        parts.append(
            f"  store: {store['currsize']} entries, "
            f"{store['storedHits']} stored hit(s), "
            f"size {store['sizeBytes'] / 1024:.1f} KiB"
        )
    if report["malformed"]:
        parts.append(f"  MALFORMED: {report['malformed']}")
    return "\n".join(parts)


__all__.append("render_report_text")
