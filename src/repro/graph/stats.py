"""Summary statistics of an MLDG, for reports and the CLI."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.analysis import is_acyclic, strongly_connected_components
from repro.graph.legality import (
    VectorClass,
    classify_vector,
    is_fusion_legal,
    is_legal,
)
from repro.graph.mldg import MLDG

__all__ = ["GraphStats", "mldg_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Shape and difficulty indicators of one MLDG."""

    nodes: int
    edges: int
    vectors: int
    hard_edges: int
    self_loops: int
    fusion_preventing: int  # vectors, not edges
    outer_carried: int
    same_iteration: int
    acyclic: bool
    scc_count: int
    largest_scc: int
    legal: bool
    directly_fusable: bool

    def describe(self) -> str:
        shape = "acyclic" if self.acyclic else (
            f"cyclic ({self.scc_count} SCCs, largest {self.largest_scc})"
        )
        return (
            f"{self.nodes} loops, {self.edges} edges, {self.vectors} dependence "
            f"vectors ({self.outer_carried} carried, {self.same_iteration} "
            f"same-iteration, {self.fusion_preventing} fusion-preventing); "
            f"{self.hard_edges} hard-edge(s), {self.self_loops} self-loop(s); "
            f"{shape}; "
            + ("legal" if self.legal else "ILLEGAL")
            + ("; directly fusable" if self.directly_fusable else "")
        )


def mldg_stats(g: MLDG) -> GraphStats:
    """Compute all the summary counters in one pass."""
    hard = 0
    self_loops = 0
    preventing = 0
    carried = 0
    same_iter = 0
    vectors = 0
    for e in g.edges():
        if e.is_hard:
            hard += 1
        if e.is_self_loop:
            self_loops += 1
        for d in e.vectors:
            vectors += 1
            kind = classify_vector(d)
            if kind == VectorClass.OUTER_CARRIED:
                carried += 1
            elif kind == VectorClass.FUSION_PREVENTING:
                preventing += 1
                same_iter += 1
            elif kind == VectorClass.FORWARD:
                same_iter += 1
    comps = strongly_connected_components(g)
    return GraphStats(
        nodes=g.num_nodes,
        edges=g.num_edges,
        vectors=vectors,
        hard_edges=hard,
        self_loops=self_loops,
        fusion_preventing=preventing,
        outer_carried=carried,
        same_iteration=same_iter,
        acyclic=is_acyclic(g),
        scc_count=len(comps),
        largest_scc=max((len(c) for c in comps), default=0),
        legal=is_legal(g),
        directly_fusable=is_fusion_legal(g),
    )
