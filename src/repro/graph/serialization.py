"""MLDG serialization: JSON round-trip and Graphviz DOT export.

The JSON schema is deliberately trivial so MLDGs can be checked into test
fixtures and exchanged with other tools::

    {
      "dim": 2,
      "nodes": ["A", "B"],
      "edges": [{"src": "A", "dst": "B", "vectors": [[1, 1], [2, 1]]}]
    }

DOT export marks hard-edges with a ``*`` suffix and bold styling, mirroring
the paper's figure notation.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = ["mldg_to_json", "mldg_from_json", "mldg_to_dot"]


def mldg_to_json(g: MLDG, *, indent: int | None = 2) -> str:
    """Serialize to the JSON schema above (edges sorted deterministically)."""
    payload: Dict[str, Any] = {
        "dim": g.dim,
        "nodes": list(g.nodes),
        "edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "vectors": [list(v) for v in sorted(e.vectors)],
            }
            for e in g.edges()
        ],
    }
    return json.dumps(payload, indent=indent)


def mldg_from_json(text: str) -> MLDG:
    """Parse the JSON schema produced by :func:`mldg_to_json`."""
    payload = json.loads(text)
    try:
        dim = int(payload["dim"])
        nodes = payload["nodes"]
        edges = payload["edges"]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed MLDG JSON: {exc}") from exc
    g = MLDG(dim=dim)
    for n in nodes:
        g.add_node(str(n))
    for rec in edges:
        vecs = [IVec([int(c) for c in v]) for v in rec["vectors"]]
        g.add_dependence(str(rec["src"]), str(rec["dst"]), *vecs)
    return g


def mldg_to_dot(g: MLDG, *, name: str = "mldg") -> str:
    """Graphviz DOT text; hard-edges are bold and labelled with a ``*``."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for n in g.nodes:
        lines.append(f'  "{n}";')
    for e in g.edges():
        vecs = ", ".join(str(v) for v in sorted(e.vectors))
        star = " *" if e.is_hard else ""
        style = ' style=bold color="#b03030"' if e.is_hard else ""
        lines.append(f'  "{e.src}" -> "{e.dst}" [label="{vecs}{star}"{style}];')
    lines.append("}")
    return "\n".join(lines)
