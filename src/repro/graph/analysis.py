"""Structural analyses on MLDGs: cycles, SCCs, topological order.

These wrap networkx on the plain edge relation of an
:class:`~repro.graph.mldg.MLDG` and add the vector-weighted cycle sum
:math:`\\delta_L(c) = \\sum_{e \\in c} \\delta_L(e)` used by Lemma 2.1.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import networkx as nx

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = [
    "is_acyclic",
    "enumerate_cycles",
    "cycle_weight",
    "strongly_connected_components",
    "topological_order",
    "condensation_order",
]


def is_acyclic(g: MLDG) -> bool:
    """True iff the MLDG has no directed cycle (self-loops count as cycles)."""
    return nx.is_directed_acyclic_graph(g.structure_digraph())


def enumerate_cycles(g: MLDG, limit: int | None = None) -> Iterator[List[str]]:
    """Yield simple cycles as node lists ``[v1, ..., vk]`` (edge ``vk -> v1`` implied).

    ``limit`` caps the number of cycles yielded; cycle counts can be
    exponential, so callers that only need a sample should set it.
    """
    count = 0
    for cyc in nx.simple_cycles(g.structure_digraph()):
        yield list(cyc)
        count += 1
        if limit is not None and count >= limit:
            return


def cycle_weight(g: MLDG, cycle: Sequence[str]) -> IVec:
    """:math:`\\delta_L(c)`: the sum of minimal edge weights along the cycle.

    ``cycle`` lists the nodes in order; the closing edge from the last node
    back to the first is implied.  A single node denotes a self-loop.
    """
    if not cycle:
        raise ValueError("empty cycle")
    total = IVec.zero(g.dim)
    k = len(cycle)
    for idx in range(k):
        src = cycle[idx]
        dst = cycle[(idx + 1) % k]
        total = total + g.delta(src, dst)
    return total


def strongly_connected_components(g: MLDG) -> List[Tuple[str, ...]]:
    """SCCs in topological order of the condensation, nodes in program order."""
    dg = g.structure_digraph()
    comp_sets = list(nx.strongly_connected_components(dg))
    cond = nx.condensation(dg, scc=comp_sets)
    ordered = []
    for comp_id in nx.topological_sort(cond):
        members = sorted(cond.nodes[comp_id]["members"], key=g.program_index)
        ordered.append(tuple(members))
    return ordered


def topological_order(g: MLDG) -> List[str]:
    """A topological order of an acyclic MLDG, tie-broken by program order.

    Raises ``networkx.NetworkXUnfeasible`` on cyclic graphs.
    """
    dg = g.structure_digraph()
    return list(nx.lexicographical_topological_sort(dg, key=g.program_index))


def condensation_order(g: MLDG) -> List[Tuple[str, ...]]:
    """Alias for :func:`strongly_connected_components` (condensation DAG order)."""
    return strongly_connected_components(g)
