"""Legality predicates for MLDGs and for loop fusion.

Three related notions, carefully separated because the paper's own examples
distinguish them:

**Legal MLDG.**  Every dependence cycle has weight lexicographically
``>= (0,...,0)`` -- exactly the feasibility condition of the LLOFRA
difference-constraint system (Theorem 2.3), decided in polynomial time by
one Bellman-Ford run.  This is the notion the paper's algorithms actually
require, and the one its own examples satisfy.

**Deadlock freedom.**  The strictly stronger ``> (0,...,0)`` bound of
Theorem 4.4: a cycle of weight *exactly* zero means a chain of statement
instances that each require the other to execute first, so no schedule at
all exists.  Notably, the paper's own Figure 14 contains such a cycle
(``B -> C -> D -> E -> B`` sums to ``(0,0)``) and is nonetheless used as a
legal input to Algorithm 5 -- the paper's per-cycle reasoning (Lemma 2.1's
proof) only asks each cycle to *contain* an outermost-carried dependence
vector, which Figure 14's ``E -> B`` edge provides via its non-minimal
vector ``(1,1)``.  We therefore keep deadlock freedom out of
:func:`check_legal` (so the paper's examples all pass) and expose it as
:func:`is_deadlock_free`; code generation refuses to emit a fused body for
deadlocked graphs.  Deciding it is polynomial: a zero-weight cycle forces
every one of its edges to ``(0,...,0)`` after the LLOFRA retiming, so an
acyclicity check on the zero-weight retimed subgraph suffices.

**Sequence executability.**  The *stronger* property that the original
loop-sequence program (Figure 1) runs correctly as written: every dependence
vector has a non-negative first coordinate, and same-outer-iteration
dependencies flow strictly forward through the textual loop order.  Graphs
extracted from real programs always satisfy this; the paper's Figure 14 does
*not* (its edge ``D -> C`` carries ``(0,-2)``), yet the paper treats it as a
legal 2LDG -- evidence that "legal" means schedulable, not
sequence-executable.

**Legal fusion** (Theorem 3.1): fusing the loop bodies preserves all
dependencies iff every edge satisfies :math:`\\delta_L(e) \\ge (0,\\ldots,0)`
lexicographically (with zero-weight edges ordered topologically inside the
fused body; always possible for a legal MLDG).

Lemma 2.1 note
--------------
Lemma 2.1 states every cycle of a legal 2LDG has weight ``>= (1, -1)``.
Figure 14's cycle ``C -> D -> C`` has weight ``(0, 1) < (1, -1)``, so the
lemma as stated is narrower than the paper's own usage; the load-bearing
bound is strict positivity.  :func:`lemma_2_1_holds` checks the literal
``(1,-1)`` bound for completeness.

Sign-convention note
--------------------
The paper's Section 3.1 prose lists the per-vector cases with the second
coordinate's inequality direction inverted relative to Theorem 3.1, the
worked examples, and Figures 4/8 (which explicitly call ``(0,-2)`` and
``(0,-3)`` fusion-preventing).  We follow Theorem 3.1 and the examples: a
vector ``d`` with ``d[0] == 0`` is *fusion-preventing* exactly when its
remaining coordinates are lexicographically negative (the consumer iteration
of the fused loop would precede the producer iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import networkx as nx

from repro.constraints import InfeasibleSystemError, VectorConstraintSystem
from repro.graph.analysis import cycle_weight, enumerate_cycles
from repro.graph.edges import DependenceEdge
from repro.graph.mldg import MLDG
from repro.vectors import IVec, lex_nonnegative

__all__ = [
    "VectorClass",
    "classify_vector",
    "LegalityFinding",
    "LegalityReport",
    "check_legal",
    "is_legal",
    "is_deadlock_free",
    "zero_weight_cycle",
    "is_sequence_executable",
    "is_fusion_legal",
    "fusion_preventing_edges",
    "fusion_preventing_vectors",
    "lemma_2_1_holds",
]


class VectorClass:
    """Names for the Section 3.1 case analysis of one dependence vector."""

    OUTER_CARRIED = "outer-carried"  # d[0] > 0: always fusion-safe
    FORWARD = "forward-or-independent"  # d[0] == 0, rest >= 0: fusion-safe
    FUSION_PREVENTING = "fusion-preventing"  # d[0] == 0, rest < 0
    ILLEGAL = "illegal"  # d[0] < 0: backwards in the outermost loop


def classify_vector(d: IVec) -> str:
    """Classify one loop dependence vector per Section 3.1 (see module note)."""
    if d[0] < 0:
        return VectorClass.ILLEGAL
    if d[0] > 0:
        return VectorClass.OUTER_CARRIED
    rest = tuple(d)[1:]
    if rest >= tuple([0] * len(rest)):
        return VectorClass.FORWARD
    return VectorClass.FUSION_PREVENTING


@dataclass(frozen=True)
class LegalityFinding:
    """One structured legality violation.

    ``kind`` names the violated condition; ``cycle`` carries the
    negative-cycle certificate (node names) when the violation is a cycle,
    ``edge``/``vector`` the offending edge and dependence vector when it is
    edge-local.  ``message`` is the human-readable form (identical to the
    string in :attr:`LegalityReport.violations`).
    """

    kind: str  # "negative-cycle" | "negative-outer-distance"
    #        | "doall-self-dependence" | "backward-same-iteration"
    message: str
    cycle: Optional[Tuple[str, ...]] = None
    edge: Optional[Tuple[str, str]] = None
    vector: Optional[IVec] = None

    def __str__(self) -> str:
        return self.message


@dataclass
class LegalityReport:
    """Outcome of a legality check with human-readable violations.

    ``violations`` is the legacy string form; ``findings`` carries the same
    violations as structured :class:`LegalityFinding` records, in the same
    order.
    """

    legal: bool
    violations: List[str] = field(default_factory=list)
    findings: List[LegalityFinding] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.legal


def _llofra_feasible_retiming(g: MLDG):
    """Solve the LLOFRA system directly (local copy to avoid an import cycle
    with :mod:`repro.fusion.legal`, which depends on this module)."""
    system = VectorConstraintSystem(g.nodes, dim=g.dim)
    for e in g.edges():
        system.add_leq(e.src, e.dst, e.delta)
    return system.solve()


def check_legal(g: MLDG) -> LegalityReport:
    """Legality: every dependence cycle has weight ``>= (0,...,0)``.

    Decided in polynomial time, without cycle enumeration: the condition is
    exactly the feasibility of the LLOFRA difference-constraint system
    (Theorem 2.3).  On failure the report carries the negative-cycle
    certificate.
    """
    findings: List[LegalityFinding] = []
    try:
        _llofra_feasible_retiming(g)
    except InfeasibleSystemError as exc:
        cyc = " -> ".join(map(str, exc.cycle))
        findings.append(
            LegalityFinding(
                kind="negative-cycle",
                message=f"dependence cycle with lexicographically negative weight: {cyc}",
                cycle=tuple(map(str, exc.cycle)),
            )
        )
    return LegalityReport(
        legal=not findings,
        violations=[f.message for f in findings],
        findings=findings,
    )


def is_legal(g: MLDG) -> bool:
    """Boolean form of :func:`check_legal`."""
    return check_legal(g).legal


def zero_weight_cycle(g: MLDG) -> Optional[List[str]]:
    """A zero-weight dependence cycle if one exists, else ``None``.

    Requires a legal graph (raises ``ValueError`` otherwise).  Zero-weight
    cycles are instance-level deadlocks; see the module docstring for why
    the paper's Figure 14 nonetheless contains one.
    """
    try:
        solution = _llofra_feasible_retiming(g)
    except InfeasibleSystemError as exc:
        raise ValueError(
            f"graph is not legal (negative cycle {exc.cycle}); "
            "zero_weight_cycle is only meaningful on legal MLDGs"
        ) from exc
    retimed = g.retimed(solution)
    zero = IVec.zero(g.dim)
    zero_graph = nx.DiGraph()
    zero_graph.add_nodes_from(g.nodes)
    for e in retimed.edges():
        if e.delta == zero:
            zero_graph.add_edge(e.src, e.dst)
    cycle = next(iter(nx.simple_cycles(zero_graph)), None)
    return list(cycle) if cycle is not None else None


def is_deadlock_free(g: MLDG) -> bool:
    """Theorem 4.4's strict hypothesis: every cycle ``> (0,...,0)``."""
    return zero_weight_cycle(g) is None


def is_sequence_executable(g: MLDG) -> LegalityReport:
    """The stronger check: the Figure-1 loop sequence runs correctly as written.

    Requires, for every dependence vector ``d`` on every edge ``u -> v``:

    1. ``d[0] >= 0`` -- no dependence on a future outermost iteration;
    2. if ``d[0] == 0`` then ``u`` strictly precedes ``v`` in program order
       (self-dependencies must be outermost-loop-carried: the innermost
       loops are DOALL).
    """
    findings: List[LegalityFinding] = []
    for e in g.edges():
        for d in e.vectors:
            if d[0] < 0:
                findings.append(
                    LegalityFinding(
                        kind="negative-outer-distance",
                        message=f"{e.src}->{e.dst} vector {d}: negative outermost distance",
                        edge=e.key,
                        vector=d,
                    )
                )
            elif d[0] == 0:
                if e.src == e.dst:
                    findings.append(
                        LegalityFinding(
                            kind="doall-self-dependence",
                            message=f"{e.src}->{e.dst} vector {d}: self-dependence must be "
                            "outermost-loop-carried (DOALL body)",
                            edge=e.key,
                            vector=d,
                        )
                    )
                elif g.program_index(e.src) >= g.program_index(e.dst):
                    findings.append(
                        LegalityFinding(
                            kind="backward-same-iteration",
                            message=f"{e.src}->{e.dst} vector {d}: same-iteration dependence "
                            "flows backwards in program order",
                            edge=e.key,
                            vector=d,
                        )
                    )
    return LegalityReport(
        legal=not findings,
        violations=[f.message for f in findings],
        findings=findings,
    )


def fusion_preventing_vectors(g: MLDG) -> Iterator[Tuple[DependenceEdge, IVec]]:
    """Yield ``(edge, vector)`` pairs whose vector is fusion-preventing."""
    for e in g.edges():
        for d in e.vectors:
            if classify_vector(d) == VectorClass.FUSION_PREVENTING:
                yield e, d


def fusion_preventing_edges(g: MLDG) -> List[DependenceEdge]:
    """Edges carrying at least one fusion-preventing dependence vector."""
    out: List[DependenceEdge] = []
    seen = set()
    for e, _d in fusion_preventing_vectors(g):
        if e.key not in seen:
            seen.add(e.key)
            out.append(e)
    return out


def is_fusion_legal(g: MLDG) -> bool:
    """Theorem 3.1: direct fusion is legal iff every edge has
    :math:`\\delta_L(e) \\ge (0, \\ldots, 0)` lexicographically.

    Because :math:`\\delta_L` is the lexicographic minimum of the edge's
    vector set, this is equivalent to every individual vector being
    non-negative.
    """
    return all(lex_nonnegative(e.delta) for e in g.edges())


def lemma_2_1_holds(g: MLDG, limit: int | None = 10_000) -> bool:
    """Check Lemma 2.1's literal bound over (up to ``limit``) simple cycles.

    The lemma claims every cycle of a legal 2LDG has weight
    :math:`\\delta_L(c) \\ge (1, -1)`.  Figures 2 and 8 satisfy it; Figure 14
    does not (see the module docstring) -- only the strictly-positive bound
    actually used by the theorems holds there.
    """
    bound = tuple([1] + [-1] * (g.dim - 1))
    for cyc in enumerate_cycles(g, limit=limit):
        if tuple(cycle_weight(g, cyc)) < bound:
            return False
    return True
