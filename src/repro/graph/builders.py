"""Convenience constructors for MLDGs.

The figures in the paper specify graphs as tables of dependence-vector sets;
:func:`mldg_from_table` accepts exactly that shape so the gallery modules and
tests can transcribe a figure in a few lines.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Tuple, Union

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = ["mldg_from_table", "as_ivec"]

_VecLike = Union[IVec, Sequence[int]]


def as_ivec(v: _VecLike) -> IVec:
    """Coerce a tuple/list of ints (or an IVec) to an IVec."""
    if isinstance(v, IVec):
        return v
    return IVec(tuple(v))


def mldg_from_table(
    table: Mapping[Tuple[str, str], Iterable[_VecLike]],
    nodes: Sequence[str] | None = None,
    dim: int = 2,
) -> MLDG:
    """Build an MLDG from ``{(src, dst): [vectors...]}``.

    ``nodes`` fixes program order explicitly (recommended); when omitted,
    nodes appear in first-mention order of the table keys.

    >>> g = mldg_from_table({("A", "B"): [(1, 1), (2, 1)]}, nodes=["A", "B"])
    >>> g.delta("A", "B")
    IVec(1, 1)
    """
    g = MLDG(dim=dim)
    if nodes is not None:
        for n in nodes:
            g.add_node(n)
    for (src, dst), vecs in table.items():
        vlist = [as_ivec(v) for v in vecs]
        if not vlist:
            raise ValueError(f"edge {src}->{dst} has an empty vector list")
        g.add_dependence(src, dst, *vlist)
    return g
