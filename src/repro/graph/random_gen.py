"""Random legal MLDG generators.

Used by the property-based tests and by the complexity-sweep benchmark
(experiment E6): the fusion algorithms are polynomial in ``|V|`` and ``|E|``,
and the sweep needs arbitrarily large *legal* inputs.

Generation respects the structural legality rules of
:mod:`repro.graph.legality`:

* forward edges (earlier loop to later loop in program order) may carry
  vectors with first coordinate ``0`` (same outermost iteration) or positive;
* backward edges and self-loops are only outermost-loop-carried
  (first coordinate ``>= 1``).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = ["random_legal_mldg", "random_acyclic_mldg", "node_names"]


def node_names(n: int) -> List[str]:
    """Deterministic node names ``L00, L01, ...`` in program order."""
    width = max(2, len(str(n - 1)))
    return [f"L{idx:0{width}d}" for idx in range(n)]


def _random_vector(
    rng: random.Random,
    *,
    min_outer: int,
    max_outer: int,
    inner_span: int,
    dim: int,
) -> IVec:
    first = rng.randint(min_outer, max_outer)
    rest = [rng.randint(-inner_span, inner_span) for _ in range(dim - 1)]
    return IVec([first] + rest)


def random_legal_mldg(
    num_nodes: int,
    *,
    edge_prob: float = 0.35,
    back_edge_prob: float = 0.15,
    self_loop_prob: float = 0.1,
    max_vectors_per_edge: int = 3,
    max_outer: int = 3,
    inner_span: int = 4,
    dim: int = 2,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> MLDG:
    """A random *legal* MLDG with ``num_nodes`` nodes.

    Every generated graph passes :func:`repro.graph.legality.check_legal`;
    hard-edges appear whenever two sampled vectors share a first coordinate.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    r = rng if rng is not None else random.Random(seed)
    names = node_names(num_nodes)
    g = MLDG(dim=dim)
    for name in names:
        g.add_node(name)

    for i in range(num_nodes):
        for j in range(num_nodes):
            if i == j:
                take = r.random() < self_loop_prob
                min_outer = 1
            elif i < j:
                take = r.random() < edge_prob
                min_outer = 0
            else:
                take = r.random() < back_edge_prob
                min_outer = 1
            if not take:
                continue
            count = r.randint(1, max_vectors_per_edge)
            vecs = [
                _random_vector(
                    r,
                    min_outer=min_outer,
                    max_outer=max_outer,
                    inner_span=inner_span,
                    dim=dim,
                )
                for _ in range(count)
            ]
            g.add_dependence(names[i], names[j], *vecs)
    return g


def random_acyclic_mldg(
    num_nodes: int,
    *,
    edge_prob: float = 0.4,
    max_vectors_per_edge: int = 3,
    max_outer: int = 3,
    inner_span: int = 4,
    dim: int = 2,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> MLDG:
    """A random legal *acyclic* MLDG (forward edges only).

    These exercise Algorithm 3 (Theorem 4.1), which applies only to DAGs.
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    r = rng if rng is not None else random.Random(seed)
    names = node_names(num_nodes)
    g = MLDG(dim=dim)
    for name in names:
        g.add_node(name)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if r.random() >= edge_prob:
                continue
            count = r.randint(1, max_vectors_per_edge)
            vecs = [
                _random_vector(
                    r, min_outer=0, max_outer=max_outer, inner_span=inner_span, dim=dim
                )
                for _ in range(count)
            ]
            g.add_dependence(names[i], names[j], *vecs)
    return g
