"""The multi-dimensional loop dependence graph (MLDG) model.

An MLDG (Definition 2.2 of the paper) models a nest of the shape of Figure 1:
one outermost sequential loop whose body is a sequence of DOALL innermost
loops.  Each innermost loop is a node; each data dependence between two loops
is an edge carrying the *set* ``D_L`` of loop dependence vectors, summarised
by the lexicographically minimal vector ``delta_L``.

Public surface:

* :class:`~repro.graph.mldg.MLDG` -- the graph itself;
* :class:`~repro.graph.edges.DependenceEdge` -- one edge with its vector set;
* :mod:`~repro.graph.legality` -- legality predicates (Lemma 2.1, Thm 3.1);
* :mod:`~repro.graph.analysis` -- cycles, SCCs, topological order;
* :mod:`~repro.graph.builders` -- convenient construction helpers;
* :mod:`~repro.graph.random_gen` -- random legal MLDG generators;
* :mod:`~repro.graph.serialization` -- JSON and Graphviz DOT round-trips.
"""

from repro.graph.edges import DependenceEdge
from repro.graph.mldg import MLDG
from repro.graph.legality import (
    LegalityFinding,
    LegalityReport,
    VectorClass,
    check_legal,
    classify_vector,
    fusion_preventing_edges,
    fusion_preventing_vectors,
    is_fusion_legal,
    is_deadlock_free,
    is_legal,
    is_sequence_executable,
    zero_weight_cycle,
    lemma_2_1_holds,
)
from repro.graph.analysis import (
    condensation_order,
    cycle_weight,
    enumerate_cycles,
    is_acyclic,
    strongly_connected_components,
    topological_order,
)
from repro.graph.builders import mldg_from_table
from repro.graph.stats import GraphStats, mldg_stats
from repro.graph.random_gen import random_legal_mldg, random_acyclic_mldg
from repro.graph.serialization import (
    mldg_from_json,
    mldg_to_dot,
    mldg_to_json,
)

__all__ = [
    "MLDG",
    "DependenceEdge",
    "LegalityFinding",
    "LegalityReport",
    "VectorClass",
    "check_legal",
    "classify_vector",
    "is_legal",
    "is_deadlock_free",
    "zero_weight_cycle",
    "is_sequence_executable",
    "is_fusion_legal",
    "fusion_preventing_edges",
    "fusion_preventing_vectors",
    "lemma_2_1_holds",
    "enumerate_cycles",
    "cycle_weight",
    "is_acyclic",
    "strongly_connected_components",
    "topological_order",
    "condensation_order",
    "mldg_from_table",
    "GraphStats",
    "mldg_stats",
    "random_legal_mldg",
    "random_acyclic_mldg",
    "mldg_to_json",
    "mldg_from_json",
    "mldg_to_dot",
]
