"""The multi-dimensional loop dependence graph.

Definition 2.2 of the paper: ``G = (V, E, delta_L, D_L)`` where nodes are
innermost DOALL loop nests, edges carry dependence-vector sets ``D_L``, and
``delta_L(e)`` is the lexicographic minimum of the set.  This class keeps the
*program order* of the nodes as well (the textual sequence of the innermost
loops inside the outer loop), because code generation and the baseline fusion
techniques need it; the paper leaves it implicit in its figures by drawing
loops A, B, C, ... in order.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.graph.edges import DependenceEdge
from repro.vectors import IVec

__all__ = ["MLDG"]


class MLDG:
    """A mutable multi-dimensional loop dependence graph.

    Parameters
    ----------
    dim:
        Dimension of all dependence vectors (2 for the paper's 2LDGs).

    Nodes are added in program order with :meth:`add_node` (or implicitly by
    :meth:`add_dependence`).  Dependence vectors accumulate per ordered node
    pair; the summary :math:`\\delta_L` and hard-edge flags are derived.

    >>> g = MLDG(dim=2)
    >>> g.add_dependence("A", "B", IVec(1, 1), IVec(2, 1))
    >>> g.delta("A", "B")
    IVec(1, 1)
    """

    def __init__(self, dim: int = 2) -> None:
        if dim < 1:
            raise ValueError("MLDG dimension must be >= 1")
        self._dim = dim
        self._nodes: List[str] = []
        self._node_index: Dict[str, int] = {}
        self._edges: Dict[Tuple[str, str], frozenset] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_node(self, name: str) -> None:
        """Append a node in program order.  Re-adding an existing node is a no-op."""
        if not isinstance(name, str) or not name:
            raise ValueError(f"node name must be a non-empty string, got {name!r}")
        if name not in self._node_index:
            self._node_index[name] = len(self._nodes)
            self._nodes.append(name)

    def add_dependence(self, src: str, dst: str, *vectors: IVec) -> None:
        """Record loop dependence vectors from ``src`` to ``dst``.

        Vectors accumulate: calling twice for the same pair unions the sets.
        """
        if not vectors:
            raise ValueError("add_dependence needs at least one vector")
        for v in vectors:
            if not isinstance(v, IVec):
                raise TypeError(f"dependence vectors must be IVec, got {v!r}")
            if v.dim != self._dim:
                raise ValueError(
                    f"vector {v} has dimension {v.dim}, MLDG has dimension {self._dim}"
                )
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        existing = self._edges.get(key, frozenset())
        self._edges[key] = existing | frozenset(vectors)

    def remove_edge(self, src: str, dst: str) -> None:
        """Delete the edge and all its vectors; raises ``KeyError`` if absent."""
        del self._edges[(src, dst)]

    def remove_dependence(self, src: str, dst: str, *vectors: IVec) -> None:
        """Remove individual vectors from an edge (the edge-pruning API).

        The edge itself disappears when its last vector goes -- an edge
        with an empty ``D_L`` would have no lexicographic minimum.  Raises
        ``KeyError`` if the edge is absent and ``ValueError`` if a vector
        is not on it: pruning a dependence that was never recorded is a
        caller bug, not a no-op.
        """
        if not vectors:
            raise ValueError("remove_dependence needs at least one vector")
        key = (src, dst)
        existing = self._edges[key]
        missing = [v for v in vectors if v not in existing]
        if missing:
            raise ValueError(
                f"vectors {missing} are not on edge {src} -> {dst}: {sorted(existing)}"
            )
        remaining = existing - frozenset(vectors)
        if remaining:
            self._edges[key] = remaining
        else:
            del self._edges[key]

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Node names in program order."""
        return tuple(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def program_index(self, node: str) -> int:
        """Position of ``node`` in the textual loop sequence."""
        return self._node_index[node]

    def has_node(self, name: str) -> bool:
        return name in self._node_index

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edges

    def edges(self) -> Iterator[DependenceEdge]:
        """All edges, in deterministic (program-order of endpoints) order."""
        for (src, dst) in sorted(
            self._edges, key=lambda k: (self._node_index[k[0]], self._node_index[k[1]])
        ):
            yield DependenceEdge(src, dst, self._edges[(src, dst)])

    def edge(self, src: str, dst: str) -> DependenceEdge:
        return DependenceEdge(src, dst, self._edges[(src, dst)])

    def D(self, src: str, dst: str) -> frozenset:
        """The dependence-vector set ``D_L(src, dst)`` (empty if no edge)."""
        return self._edges.get((src, dst), frozenset())

    def delta(self, src: str, dst: str) -> IVec:
        """The minimal loop dependence vector :math:`\\delta_L` of one edge."""
        # hot path for cycle-weight sums: avoid materialising an edge object
        return min(self._edges[(src, dst)])

    def is_hard_edge(self, src: str, dst: str) -> bool:
        return self.edge(src, dst).is_hard

    def all_vectors(self) -> Iterator[IVec]:
        """Every dependence vector of every edge."""
        for vecs in self._edges.values():
            yield from vecs

    def successors(self, node: str) -> List[str]:
        return [d for (s, d) in self._edges if s == node]

    def predecessors(self, node: str) -> List[str]:
        return [s for (s, d) in self._edges if d == node]

    # ------------------------------------------------------------------ #
    # transformation
    # ------------------------------------------------------------------ #

    def copy(self) -> "MLDG":
        g = MLDG(dim=self._dim)
        for n in self._nodes:
            g.add_node(n)
        g._edges = dict(self._edges)
        return g

    def retimed(self, r: Mapping[str, IVec]) -> "MLDG":
        """The graph after applying retiming ``r`` (Section 2.3).

        Every dependence vector on ``u -> v`` becomes ``d + r(u) - r(v)``.
        Nodes missing from ``r`` are treated as retimed by the zero vector.
        """
        zero = IVec.zero(self._dim)
        g = MLDG(dim=self._dim)
        for n in self._nodes:
            g.add_node(n)
        for (src, dst), vecs in self._edges.items():
            r_src = r.get(src, zero)
            r_dst = r.get(dst, zero)
            g._edges[(src, dst)] = frozenset(d + r_src - r_dst for d in vecs)
        return g

    def restricted_to(self, nodes: Iterable[str]) -> "MLDG":
        """The induced subgraph on the given nodes (program order preserved)."""
        keep = set(nodes)
        unknown = keep - set(self._nodes)
        if unknown:
            raise KeyError(f"unknown nodes: {sorted(unknown)}")
        g = MLDG(dim=self._dim)
        for n in self._nodes:
            if n in keep:
                g.add_node(n)
        for (src, dst), vecs in self._edges.items():
            if src in keep and dst in keep:
                g._edges[(src, dst)] = vecs
        return g

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #

    def to_networkx(self) -> "nx.MultiDiGraph":
        """A networkx view with ``delta``/``vectors``/``hard`` edge attributes."""
        g = nx.MultiDiGraph()
        for n in self._nodes:
            g.add_node(n, order=self._node_index[n])
        for e in self.edges():
            g.add_edge(e.src, e.dst, delta=e.delta, vectors=e.vectors, hard=e.is_hard)
        return g

    def structure_digraph(self) -> "nx.DiGraph":
        """A plain digraph of the edge relation (for cycle/SCC analysis)."""
        g = nx.DiGraph()
        g.add_nodes_from(self._nodes)
        g.add_edges_from(self._edges.keys())
        return g

    # ------------------------------------------------------------------ #
    # equality / display
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MLDG):
            return NotImplemented
        return (
            self._dim == other._dim
            and self._nodes == other._nodes
            and self._edges == other._edges
        )

    def __hash__(self) -> int:  # pragma: no cover - MLDGs are mutable; hash by id
        return id(self)

    def __repr__(self) -> str:
        return f"MLDG(dim={self._dim}, nodes={len(self._nodes)}, edges={len(self._edges)})"

    def describe(self) -> str:
        """A multi-line human-readable dump used by the CLI and examples."""
        lines = [f"MLDG dim={self._dim}"]
        lines.append("  nodes: " + ", ".join(self._nodes))
        for e in self.edges():
            lines.append("  " + str(e))
        return "\n".join(lines)
