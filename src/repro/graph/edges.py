"""Edge representation for MLDGs.

A :class:`DependenceEdge` bundles one ordered node pair with the full set
``D_L`` of loop dependence vectors between those loops.  The summary weight
``delta`` is the lexicographic minimum (the paper's :math:`\\delta_L(e)`), and
the edge knows whether it is a *parallelism hard-edge* (Section 2.2): two or
more of its vectors share the first coordinate but differ in a later one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from repro.vectors import IVec, lex_min

__all__ = ["DependenceEdge"]


def _detect_hard(vectors: FrozenSet[IVec]) -> bool:
    """Hard-edge test: same first coordinate, different remainder.

    The paper defines hard-edges in two dimensions: dependence vectors that
    agree on the first coordinate but differ on the second (e.g. ``(0,-2)``
    and ``(0,1)`` between B and C in Figure 2).  The natural n-dimensional
    reading -- agreement on the first coordinate with disagreement anywhere
    later -- coincides with that in 2-D and is what we implement.
    """
    by_first: dict = {}
    for v in vectors:
        rest = tuple(v)[1:]
        seen = by_first.setdefault(v[0], rest)
        if seen != rest:
            return True
    return False


@dataclass(frozen=True)
class DependenceEdge:
    """One MLDG edge ``src -> dst`` with its dependence-vector set.

    Attributes
    ----------
    src, dst:
        Node names.  ``src == dst`` is allowed (self-dependence, Section 2.1).
    vectors:
        The non-empty set ``D_L(src, dst)``; all vectors share one dimension.
    """

    src: str
    dst: str
    vectors: FrozenSet[IVec] = field()

    def __post_init__(self) -> None:
        if not self.vectors:
            raise ValueError(f"edge {self.src}->{self.dst} has no dependence vectors")
        dims = {v.dim for v in self.vectors}
        if len(dims) != 1:
            raise ValueError(
                f"edge {self.src}->{self.dst} mixes vector dimensions {sorted(dims)}"
            )

    @classmethod
    def of(cls, src: str, dst: str, vectors: Iterable[IVec]) -> "DependenceEdge":
        return cls(src=src, dst=dst, vectors=frozenset(vectors))

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    @property
    def dim(self) -> int:
        return next(iter(self.vectors)).dim

    @property
    def delta(self) -> IVec:
        """The minimal loop dependence vector :math:`\\delta_L(e)` (Def. 2.2)."""
        return lex_min(self.vectors)

    @property
    def is_self_loop(self) -> bool:
        """Self-dependence: produced and consumed by the same innermost loop."""
        return self.src == self.dst

    @property
    def is_hard(self) -> bool:
        """Parallelism hard-edge test (Section 2.2)."""
        return _detect_hard(self.vectors)

    def shifted(self, r_src: IVec, r_dst: IVec) -> "DependenceEdge":
        """The edge after retiming: each vector becomes ``d + r(src) - r(dst)``.

        This is the paper's :math:`D_{Lr}(u,v) = \\{d + r(u) - r(v)\\}`
        (Section 2.3).
        """
        return DependenceEdge.of(
            self.src, self.dst, (d + r_src - r_dst for d in self.vectors)
        )

    def __str__(self) -> str:
        vecs = ", ".join(str(v) for v in sorted(self.vectors))
        star = " *" if self.is_hard else ""
        return f"{self.src} -> {self.dst}{star} {{{vecs}}}"
