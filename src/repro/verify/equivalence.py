"""Semantic equivalence of original vs fused programs.

Both programs execute every statement instance exactly once over the same
single-assignment arrays, so a correct transformation yields *bit-identical*
results from identical initial stores -- no floating-point tolerance is
needed or used.  Randomised intra-phase execution orders make the parallel
modes adversarial: a fusion wrongly claimed DOALL fails here with high
probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.codegen.fused import FusedProgram, apply_fusion
from repro.codegen.interp import ArrayStore, run_fused, run_original
from repro.fusion.driver import FusionResult, Parallelism
from repro.loopir.ast_nodes import LoopNest
from repro.vectors import IVec

__all__ = ["EquivalenceReport", "check_equivalence", "verify_fusion_result"]


@dataclass
class EquivalenceReport:
    """Outcome of an equivalence run."""

    equivalent: bool
    mode: str
    n: int
    m: int
    seed: int
    max_abs_difference: float

    def __bool__(self) -> bool:
        return self.equivalent


def check_equivalence(
    nest: LoopNest,
    fused: FusedProgram,
    *,
    n: int = 9,
    m: int = 8,
    seed: int = 0,
    mode: str = "serial",
    schedule: Optional[IVec] = None,
    order_seed: int = 12345,
) -> EquivalenceReport:
    """Run both programs from one random initial store and compare exactly."""
    base = ArrayStore.for_program(nest, n, m, seed=seed)
    reference = run_original(nest, n, m, store=base.copy())
    transformed = run_fused(
        fused, n, m, store=base.copy(), mode=mode, schedule=schedule, order_seed=order_seed
    )
    return EquivalenceReport(
        equivalent=reference.equal(transformed),
        mode=mode,
        n=n,
        m=m,
        seed=seed,
        max_abs_difference=reference.max_abs_difference(transformed),
    )


def verify_fusion_result(
    nest: LoopNest,
    result: FusionResult,
    *,
    sizes: Optional[List[tuple]] = None,
    seeds: Optional[List[int]] = None,
) -> List[EquivalenceReport]:
    """Exercise a fusion result end-to-end in its claimed execution mode.

    For a DOALL result: serial *and* randomised-row execution must match the
    original.  For a hyperplane result: serial and randomised wavefront
    execution.  Returns one report per (size, seed, mode) combination; all
    must be equivalent for a correct transformation.
    """
    sizes = sizes or [(9, 8), (6, 13)]
    seeds = seeds or [0, 1]
    fused = apply_fusion(nest, result.retiming, mldg=result.original)

    modes: List[tuple] = [("serial", None)]
    if result.parallelism is Parallelism.DOALL:
        modes.append(("doall", None))
    elif result.parallelism is Parallelism.HYPERPLANE:
        modes.append(("hyperplane", result.schedule))

    reports: List[EquivalenceReport] = []
    for (n, m) in sizes:
        for seed in seeds:
            for mode, schedule in modes:
                reports.append(
                    check_equivalence(
                        nest,
                        fused,
                        n=n,
                        m=m,
                        seed=seed,
                        mode=mode,
                        schedule=schedule,
                        order_seed=seed * 7919 + 13,
                    )
                )
    return reports
