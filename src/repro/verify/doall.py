"""Instance-level DOALL verification.

Independent of the MLDG-level argument (Property 4.1), this scans the
actual statement instances of a fused program: the fused innermost loop is
DOALL iff no array cell written at fused iteration ``(i, j1)`` is read (or
written) at ``(i, j2)`` with ``j2 != j1``.  Used by the test suite to
cross-check the graph-level DOALL claims against ground truth.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.codegen.fused import FusedProgram

__all__ = ["runtime_doall_violations"]

_Cell = Tuple[str, int, int]


def runtime_doall_violations(
    fp: FusedProgram, n: int, m: int, *, limit: int = 20
) -> List[str]:
    """Same-row cross-iteration conflicts of the fused loop (empty = DOALL).

    Scans every fused row: collects which fused ``j`` writes each cell, then
    reports reads of cells written elsewhere in the same row.  ``limit``
    caps the number of reported violations.
    """
    violations: List[str] = []
    lo_i, hi_i = fp.full_outer_range(n)
    lo_j, hi_j = fp.full_inner_range(m)

    for i in range(lo_i, hi_i + 1):
        writers: Dict[_Cell, int] = {}
        for j in range(lo_j, hi_j + 1):
            for node in fp.body:
                oi, oj = i + node.shift[0], j + node.shift[1]
                if not (0 <= oi <= n and 0 <= oj <= m):
                    continue
                for stmt in node.statements:
                    t = stmt.target
                    writers[(t.array, oi + t.offset[0], oj + t.offset[1])] = j
        for j in range(lo_j, hi_j + 1):
            for node in fp.body:
                oi, oj = i + node.shift[0], j + node.shift[1]
                if not (0 <= oi <= n and 0 <= oj <= m):
                    continue
                for stmt in node.statements:
                    for ref in stmt.reads():
                        cell = (ref.array, oi + ref.offset[0], oj + ref.offset[1])
                        w = writers.get(cell)
                        if w is not None and w != j:
                            violations.append(
                                f"row {i}: iteration j={j} ({node.label}) reads "
                                f"{cell[0]}[{cell[1]}][{cell[2]}] written at j={w}"
                            )
                            if len(violations) >= limit:
                                return violations
    return violations
