"""End-to-end semantic verification of fusion transformations.

* :func:`~repro.verify.equivalence.check_equivalence` -- run the original
  loop sequence and the fused/retimed program on identical random inputs
  and compare every array bit-for-bit;
* :func:`~repro.verify.equivalence.verify_fusion_result` -- one-call
  verification of a :class:`repro.fusion.FusionResult` against a source
  program, exercising the execution mode the result claims (DOALL rows or
  hyperplane wavefronts, with randomised intra-phase order);
* :func:`~repro.verify.doall.runtime_doall_violations` -- instance-level
  dependence scan proving (or refuting) that rows of the fused loop are
  independent, without relying on the graph-level argument.
"""

from repro.verify.equivalence import (
    EquivalenceReport,
    check_equivalence,
    verify_fusion_result,
)
from repro.verify.doall import runtime_doall_violations
from repro.verify.dataflow import (
    DataflowSemantics,
    OrderViolation,
    execute_retimed,
    reference_values,
    verify_retimed_execution,
)

__all__ = [
    "check_equivalence",
    "verify_fusion_result",
    "EquivalenceReport",
    "runtime_doall_violations",
    "DataflowSemantics",
    "OrderViolation",
    "reference_values",
    "execute_retimed",
    "verify_retimed_execution",
]
