"""Dimension-agnostic dataflow execution of MLDGs.

The loop-IR execution path (parse -> codegen -> interpret) is inherently
two-level; this module verifies fusions *in any dimension* by executing the
MLDG itself as a dataflow program:

    value(u, x) = input(u, x) + scale_u * sum over predecessors w and
                  vectors d in D_L(w, u) of value(w, x - d)

with ``input(u, x)`` a deterministic pseudo-random function of ``(u, x)``
(so every execution order sees identical inputs without materialising
arrays), halo reads (``x - d`` outside the iteration box) drawing from the
same input function, and ``scale_u = 1 / (indegree + 1)`` keeping values
bounded.  Because each instance's value is a pure function of its
dependencies, **any** dependence-respecting execution order produces
bit-identical values.

Two evaluators are provided:

* :func:`reference_values` -- demand-driven memoised evaluation (order
  independent by construction; rejects deadlocked graphs, whose instance
  dependencies are circular);
* :func:`execute_retimed` -- an *operational* evaluation in a concrete
  schedule of the retimed fused space: lexicographic (serial), rows with
  randomised inner order (DOALL claim), or wavefronts by a schedule vector
  (hyperplane claim).  Reads that the order has not produced yet raise
  :class:`OrderViolation` -- executing an invalid schedule fails loudly
  instead of silently reading stale values.

Together they give end-to-end verification for the n-D generalisations
(``repro.fusion.multidim``) that the 2-D codegen pipeline gives the paper's
algorithms.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.mldg import MLDG
from repro.retiming import Retiming
from repro.vectors import IVec

__all__ = [
    "OrderViolation",
    "DataflowSemantics",
    "reference_values",
    "execute_retimed",
    "verify_retimed_execution",
]

_Instance = Tuple[str, Tuple[int, ...]]


class OrderViolation(Exception):
    """The requested execution order read a value before producing it."""


class DataflowSemantics:
    """The value semantics of one MLDG over an iteration box.

    ``bounds`` gives the inclusive upper bound per dimension (lower bounds
    are 0), e.g. ``(n, m)`` for the 2-D model.
    """

    def __init__(self, g: MLDG, bounds: Sequence[int], *, seed: int = 0) -> None:
        if len(bounds) != g.dim:
            raise ValueError(f"bounds {bounds} do not match dimension {g.dim}")
        self.g = g
        self.bounds = tuple(int(b) for b in bounds)
        self.seed = seed
        self._preds: Dict[str, List[Tuple[str, IVec]]] = {
            node: sorted(
                (
                    (w, d)
                    for w in set(g.predecessors(node))
                    for d in g.D(w, node)
                ),
                key=lambda wd: (g.program_index(wd[0]), tuple(wd[1])),
            )
            for node in g.nodes
        }
        self._scale: Dict[str, float] = {
            node: 1.0 / (len(self._preds[node]) + 1) for node in g.nodes
        }

    def in_box(self, x: Tuple[int, ...]) -> bool:
        return all(0 <= c <= b for c, b in zip(x, self.bounds))

    def input_value(self, node: str, x: Tuple[int, ...]) -> float:
        """Deterministic pseudo-random input, identical across orders."""
        key = f"{self.seed}:{node}:" + ",".join(map(str, x))
        return random.Random(key).uniform(-1.0, 1.0)

    def iteration_box(self) -> Iterable[Tuple[int, ...]]:
        return itertools.product(*(range(b + 1) for b in self.bounds))

    def combine(
        self, node: str, x: Tuple[int, ...], fetch
    ) -> float:
        """One instance's value given a ``fetch(pred, x_pred)`` accessor."""
        total = self.input_value(node, x)
        scale = self._scale[node]
        for (w, d) in self._preds[node]:
            xp = tuple(c - dc for c, dc in zip(x, d))
            if self.in_box(xp):
                total += scale * fetch(w, xp)
            else:
                total += scale * self.input_value(w, xp)
        return total


def reference_values(
    sem: DataflowSemantics, *, max_instances: int = 2_000_000
) -> Dict[_Instance, float]:
    """Demand-driven evaluation of every in-box instance (order-free).

    Raises ``ValueError`` on instance-level dependence cycles (deadlocked
    graphs) and on boxes larger than ``max_instances``.
    """
    g = sem.g
    count = g.num_nodes
    for b in sem.bounds:
        count *= b + 1
    if count > max_instances:
        raise ValueError(f"iteration box too large ({count} instances)")

    values: Dict[_Instance, float] = {}
    in_progress: set = set()

    def eval_instance(node: str, x: Tuple[int, ...]) -> float:
        key = (node, x)
        if key in values:
            return values[key]
        if key in in_progress:
            raise ValueError(
                f"instance-level dependence cycle through {node}{x}: "
                "graph is deadlocked (zero-weight cycle)"
            )
        in_progress.add(key)
        # iterative deepening via recursion; Python's default limit is too
        # small for long chains, so emulate with an explicit stack
        value = sem.combine(node, x, eval_instance)
        in_progress.discard(key)
        values[key] = value
        return value

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 20_000))
    try:
        for node in g.nodes:
            for x in sem.iteration_box():
                eval_instance(node, x)
    finally:
        sys.setrecursionlimit(old_limit)
    return values


def _body_order(g: MLDG, retiming: Retiming) -> List[str]:
    from repro.codegen.fused import DeadlockError, _zero_dependence_order

    try:
        return _zero_dependence_order(retiming.apply(g), list(g.nodes))
    except DeadlockError as exc:
        raise ValueError(f"no fused body order exists: {exc}") from exc


def execute_retimed(
    sem: DataflowSemantics,
    retiming: Retiming,
    *,
    mode: str = "serial",
    schedule: Optional[IVec] = None,
    order_seed: int = 7,
) -> Dict[_Instance, float]:
    """Operationally execute the retimed fused space in a concrete order.

    Modes: ``"serial"`` (fused coordinates lexicographic), ``"doall"``
    (outermost fused coordinate ascending, remaining coordinates randomly
    permuted per row -- valid iff the fusion is DOALL across the inner
    dimensions), ``"hyperplane"`` (levels ``t = s . x`` ascending, cells
    randomly permuted within a level).
    """
    g = sem.g
    order = _body_order(g, retiming)
    rng = random.Random(order_seed)

    # fused cell c executes node u's original instance c + r(u); the fused
    # range per dimension spans every original instance of every node
    los = []
    his = []
    for k in range(g.dim):
        shifts = [retiming[node][k] for node in g.nodes]
        los.append(min(-s for s in shifts))
        his.append(sem.bounds[k] - min(shifts))

    def cells() -> List[Tuple[int, ...]]:
        return list(itertools.product(*(range(lo, hi + 1) for lo, hi in zip(los, his))))

    if mode == "serial":
        ordered = cells()
    elif mode == "doall":
        ordered = []
        inner = list(itertools.product(*(range(lo, hi + 1) for lo, hi in zip(los[1:], his[1:]))))
        for i in range(los[0], his[0] + 1):
            perm = inner[:]
            rng.shuffle(perm)
            ordered.extend((i, *rest) for rest in perm)
    elif mode == "hyperplane":
        if schedule is None:
            raise ValueError("hyperplane mode needs a schedule vector")
        levels: Dict[int, List[Tuple[int, ...]]] = {}
        for c in cells():
            levels.setdefault(sum(s * ci for s, ci in zip(schedule, c)), []).append(c)
        ordered = []
        for t in sorted(levels):
            batch = levels[t]
            rng.shuffle(batch)
            ordered.extend(batch)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    values: Dict[_Instance, float] = {}

    def fetch(w: str, xp: Tuple[int, ...]) -> float:
        key = (w, xp)
        if key not in values:
            raise OrderViolation(
                f"read of {w}{xp} before it was produced (invalid schedule)"
            )
        return values[key]

    for cell in ordered:
        for node in order:
            x = tuple(c + rc for c, rc in zip(cell, retiming[node]))
            if sem.in_box(x):
                values[(node, x)] = sem.combine(node, x, fetch)
    return values


def verify_retimed_execution(
    g: MLDG,
    retiming: Retiming,
    bounds: Sequence[int],
    *,
    mode: str = "serial",
    schedule: Optional[IVec] = None,
    seed: int = 0,
    order_seed: int = 7,
) -> bool:
    """True iff the operational execution matches the order-free reference
    bit-for-bit (and completes without :class:`OrderViolation`)."""
    sem = DataflowSemantics(g, bounds, seed=seed)
    reference = reference_values(sem)
    actual = execute_retimed(
        sem, retiming, mode=mode, schedule=schedule, order_seed=order_seed
    )
    return reference == actual
