"""The built-in analyzer rules.

Importing this module populates the registry.  Codes are grouped by layer:

========  ======================  ========================================
``LF0xx``  source                 parse failures
``LF1xx``  program model (§1)     single assignment, constant distances,
                                  DOALL innermost loops, read ordering
``LF2xx``  MLDG / fusion          fusion-preventing edges (Thm 3.1),
                                  illegal cycles (Lemma 2.1 / Thm 2.3),
                                  deadlock cycles, hard-edges (Def. 2.2)
``LF3xx``  hygiene                dead arrays, domain-escaping writes
========  ======================  ========================================

Model-layer rules delegate to :func:`repro.loopir.validate.model_findings`
so the linter and :func:`~repro.loopir.validate.validate_program` can never
disagree; graph-layer rules build on :mod:`repro.graph.legality` and
:mod:`repro.lint.doall`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.analysis.tests import Verdict
from repro.graph.legality import fusion_preventing_vectors, zero_weight_cycle
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.doall import static_doall_races
from repro.lint.registry import rule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import AnalysisReport, ClassifiedDependence
    from repro.lint.engine import LintContext
    from repro.loopir.ast_nodes import SourceSpan

__all__ = ["MODEL_RULE_CODES"]

#: Model-layer codes whose findings come from ``model_findings``.
MODEL_RULE_CODES = ("LF101", "LF102", "LF103", "LF104")


# ---------------------------------------------------------------------- #
# LF0xx -- source layer
# ---------------------------------------------------------------------- #


@rule(
    "LF001",
    "parse-error",
    Severity.ERROR,
    "source",
    "the DSL source does not parse (syntax or shape error)",
)
def check_parse_error(ctx: "LintContext") -> Iterator[Diagnostic]:
    """Emitted by the engine when parsing fails; never fires on a valid tree."""
    return iter(())


# ---------------------------------------------------------------------- #
# LF1xx -- program-model layer (Section 1 / Figure 1)
# ---------------------------------------------------------------------- #


def _model_checker(code: str):
    def check(ctx: "LintContext") -> Iterator[Diagnostic]:
        for f in ctx.model_findings():
            if f.code == code:
                yield Diagnostic(
                    code=code,
                    severity=Severity.ERROR,
                    message=f.message,
                    span=f.span,
                    hint=f.hint,
                )

    return check


rule(
    "LF101",
    "multiple-assignment",
    Severity.ERROR,
    "model",
    "an array is written by more than one statement "
    "(the model is single-assignment per array)",
)(_model_checker("LF101"))

rule(
    "LF102",
    "future-iteration-read",
    Severity.ERROR,
    "model",
    "a read depends on a future outermost iteration (negative first "
    "dependence coordinate)",
)(_model_checker("LF102"))


def _race_evidence(
    report: "AnalysisReport", span: "Optional[SourceSpan]"
) -> "Optional[ClassifiedDependence]":
    """The classified inner-carried self-dependence behind an LF103 finding.

    Matched by the racing read's source span when available, falling back
    to the first inner-carried self-dependence otherwise.
    """
    racy = [
        d
        for d in report.dependences
        if d.record.src == d.record.dst
        and d.record.vector[0] == 0
        and any(c != 0 for c in d.record.vector[1:])
    ]
    if span is not None:
        for d in racy:
            if d.record.ref is not None and d.record.ref.span == span:
                return d
    return racy[0] if racy else None


@rule(
    "LF103",
    "static-doall-race",
    Severity.ERROR,
    "model",
    "a claimed-DOALL innermost loop carries an inner-iteration dependence "
    "(equal outermost coordinate, nonzero inner offset)",
)
def check_doall_race(ctx: "LintContext") -> Iterator[Diagnostic]:
    """Static complement of ``runtime_doall_violations``.

    With source available, the model analysis pinpoints the racing read and
    the dependence tests sharpen the verdict: a *must* race gains a concrete
    witness iteration pair, and a race that is provably absent within the
    declared (concrete) bounds downgrades to a warning -- the program-model
    gate still rejects the loop, but the diagnostic says why it is safe at
    these bounds.  For an abstract MLDG the self-edges are inspected
    directly.
    """
    if ctx.nest is not None:
        report = ctx.analysis()
        for f in ctx.model_findings():
            if f.code != "LF103":
                continue
            severity = Severity.ERROR
            message, hint = f.message, f.hint
            d = _race_evidence(report, f.span) if report is not None else None
            if d is not None:
                ev = d.evidence
                if ev.verdict is Verdict.MUST and ev.witness is not None:
                    producer, consumer = ev.witness
                    message += (
                        f"; must-race witness: iterations {tuple(producer)} "
                        f"and {tuple(consumer)} touch the same cell of "
                        f"'{d.record.array}'"
                    )
                elif ev.verdict is Verdict.ABSENT:
                    severity = Severity.WARNING
                    message += (
                        f"; may-race downgraded: provably absent over "
                        f"{ev.domain.describe()} ({ev.test}: {ev.reason})"
                    )
                    hint = (
                        "the program-model gate still rejects claimed-DOALL "
                        "loops with syntactic inner-carried dependences; fix "
                        "the offsets to clear LF103 entirely"
                    )
                else:
                    message += "; may-race: the dependence tests cannot decide"
            yield Diagnostic(
                code="LF103",
                severity=severity,
                message=message,
                span=f.span,
                hint=hint,
            )
        return
    if ctx.mldg is None:
        return
    for race in static_doall_races(ctx.mldg):
        yield Diagnostic(
            code="LF103",
            severity=Severity.ERROR,
            message=f"loop {race.src} is not DOALL: {race}",
            hint="make the self-dependence outermost-loop-carried "
            "(first coordinate >= 1) or split the loop",
        )


rule(
    "LF104",
    "read-before-write",
    Severity.ERROR,
    "model",
    "a value is read before the statement that produces it executes "
    "(same outermost iteration)",
)(_model_checker("LF104"))


# ---------------------------------------------------------------------- #
# LF2xx -- MLDG / fusion layer
# ---------------------------------------------------------------------- #


@rule(
    "LF201",
    "fusion-preventing-edge",
    Severity.WARNING,
    "graph",
    "an edge carries a fusion-preventing dependence vector "
    "(delta_L(e) < (0,...,0)); direct fusion is illegal (Theorem 3.1)",
)
def check_fusion_preventing(ctx: "LintContext") -> Iterator[Diagnostic]:
    g = ctx.mldg
    if g is None:
        return
    report = ctx.legal_report()
    if report is not None and report.legal:
        note = (
            "a legal retiming (Algorithm 2, LLOFRA) can repair it by "
            "shifting the consumer to a later outermost iteration"
        )
        hint = "run fusion with strategy 'auto' or 'legal-only'; the retimed edge becomes non-negative"
    else:
        note = "no retiming can repair it: the graph carries an illegal cycle"
        hint = "fix the illegal cycle (LF202) first"
    for e, d in fusion_preventing_vectors(g):
        yield Diagnostic(
            code="LF201",
            severity=Severity.WARNING,
            message=(
                f"edge {e.src} -> {e.dst} carries fusion-preventing vector {d}: "
                f"fusing directly would reverse this dependence; {note}"
            ),
            span=ctx.span_for_edge(e.src, e.dst, d),
            hint=hint,
        )


@rule(
    "LF202",
    "illegal-cycle",
    Severity.ERROR,
    "graph",
    "a dependence cycle has lexicographically negative weight; no legal "
    "schedule exists (Theorem 2.3)",
)
def check_illegal_cycle(ctx: "LintContext") -> Iterator[Diagnostic]:
    report = ctx.legal_report()
    if report is None or report.legal:
        return
    for f in report.findings:
        yield Diagnostic(
            code="LF202",
            severity=Severity.ERROR,
            message=f.message,
            hint="every cycle must satisfy delta_L(c) >= (0,...,0); raise an "
            "outermost-carried distance on one of the cycle's edges",
        )


@rule(
    "LF203",
    "zero-weight-cycle",
    Severity.WARNING,
    "graph",
    "a dependence cycle has weight exactly (0,...,0): an instance-level "
    "deadlock -- the fused body admits no statement order (cf. Lemma 2.1's "
    "bound delta_L(c) >= (1,-1))",
)
def check_zero_weight_cycle(ctx: "LintContext") -> Iterator[Diagnostic]:
    g = ctx.mldg
    if g is None:
        return
    report = ctx.legal_report()
    if report is None or not report.legal:
        return  # only meaningful on legal graphs (LF202 already fired)
    cyc = zero_weight_cycle(g)
    if cyc is not None:
        chain = " -> ".join(cyc + [cyc[0]])
        yield Diagnostic(
            code="LF203",
            severity=Severity.WARNING,
            message=(
                f"zero-weight dependence cycle {chain}: a chain of statement "
                "instances each requiring the others to run first; code "
                "generation for a fused body will fail (DeadlockError), only "
                "wavefront execution over the retimed space remains"
            ),
            hint="give one edge of the cycle a strictly positive distance, "
            "or accept hyperplane (wavefront) execution",
        )


@rule(
    "LF204",
    "hard-edge",
    Severity.INFO,
    "graph",
    "a parallelism hard-edge (Definition 2.2): two dependence vectors agree "
    "on the first coordinate but differ later, so retiming must move the "
    "endpoints to different outermost iterations to recover DOALL",
)
def check_hard_edges(ctx: "LintContext") -> Iterator[Diagnostic]:
    g = ctx.mldg
    if g is None:
        return
    for e in g.edges():
        if e.is_hard:
            vecs = ", ".join(str(v) for v in sorted(e.vectors))
            yield Diagnostic(
                code="LF204",
                severity=Severity.INFO,
                message=(
                    f"hard-edge {e.src} -> {e.dst} {{{vecs}}}: vectors share "
                    "a first coordinate but differ later; any DOALL fusion "
                    "must retime across this edge (Definition 2.2)"
                ),
                span=ctx.span_for_edge(e.src, e.dst),
            )


# ---------------------------------------------------------------------- #
# LF3xx -- hygiene layer
# ---------------------------------------------------------------------- #


@rule(
    "LF301",
    "dead-array",
    Severity.INFO,
    "hygiene",
    "an array is written but never read; a dead store unless it is a "
    "program output",
)
def check_dead_arrays(ctx: "LintContext") -> Iterator[Diagnostic]:
    nest = ctx.nest
    if nest is None:
        return
    read = {r.array for lp in nest.loops for s in lp.statements for r in s.reads()}
    for lp in nest.loops:
        for stmt in lp.statements:
            arr = stmt.target.array
            if arr not in read:
                yield Diagnostic(
                    code="LF301",
                    severity=Severity.INFO,
                    message=(
                        f"array '{arr}' (written in loop {lp.label}) is never "
                        "read; dead store unless it is a program output"
                    ),
                    span=stmt.target.span or stmt.span,
                    hint=f"delete the statement if '{arr}' is not consumed "
                    "outside the nest",
                )


@rule(
    "LF302",
    "domain-escaping-write",
    Severity.WARNING,
    "hygiene",
    "a statement writes at a nonzero subscript offset, so boundary "
    "iterations store outside the [0,n] x [0,m] iteration domain",
)
def check_domain_escaping_writes(ctx: "LintContext") -> Iterator[Diagnostic]:
    nest = ctx.nest
    if nest is None:
        return
    for lp in nest.loops:
        for stmt in lp.statements:
            off = stmt.target.offset
            if not off.is_zero():
                yield Diagnostic(
                    code="LF302",
                    severity=Severity.WARNING,
                    message=(
                        f"loop {lp.label} writes {stmt.target} at offset "
                        f"{off}: iterations at the domain boundary store "
                        "cells outside the iteration domain"
                    ),
                    span=stmt.target.span or stmt.span,
                    hint="write the array at [i][j] and shift the reads "
                    "instead; retiming assumes writes stay in-domain",
                )
