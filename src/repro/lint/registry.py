"""The rule registry.

Every analyzer rule registers itself with the :func:`rule` decorator; the
engine iterates :func:`all_rules` so adding a rule is one function in
:mod:`repro.lint.rules` plus its metadata -- no engine changes.  The
registry is also the single source of rule metadata for the SARIF
``tool.driver.rules`` array and for ``docs/DIAGNOSTICS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List

from repro.lint.diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.lint.engine import LintContext

__all__ = ["Rule", "rule", "all_rules", "get_rule", "rule_codes"]

Checker = Callable[["LintContext"], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """Metadata plus checker for one diagnostic code."""

    code: str  # stable code, e.g. "LF201"
    slug: str  # kebab-case rule name, e.g. "fusion-preventing-edge"
    severity: Severity  # default severity (checkers may downgrade per finding)
    layer: str  # "source" | "model" | "graph" | "hygiene"
    summary: str  # one-line description (SARIF shortDescription)
    checker: Checker

    def run(self, ctx: "LintContext") -> Iterator[Diagnostic]:
        return self.checker(ctx)


_REGISTRY: Dict[str, Rule] = {}


def rule(
    code: str, slug: str, severity: Severity, layer: str, summary: str
) -> Callable[[Checker], Checker]:
    """Register a checker function under a stable diagnostic code."""

    def register(fn: Checker) -> Checker:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = Rule(
            code=code,
            slug=slug,
            severity=severity,
            layer=layer,
            summary=summary,
            checker=fn,
        )
        return fn

    return register


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code (stable SARIF rule order)."""
    return [_REGISTRY[c] for c in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    return _REGISTRY[code]


def rule_codes() -> List[str]:
    return sorted(_REGISTRY)
