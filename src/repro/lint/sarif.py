"""SARIF 2.1.0 output.

Serialises a :class:`~repro.lint.diagnostics.LintResult` as a Static
Analysis Results Interchange Format log (the schema GitHub code scanning
ingests): one ``run`` of the ``repro-lint`` driver, every registered rule in
``tool.driver.rules`` (with stable indices), one ``result`` per diagnostic
with ``ruleId``, ``level`` and a physical location carrying line/column.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.diagnostics import Diagnostic, LintResult
from repro.lint.registry import all_rules, rule_codes

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "sarif_log", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_DOCS_URI = "https://example.invalid/repro/docs/DIAGNOSTICS.md"


def _tool_version() -> str:
    import repro

    return getattr(repro, "__version__", "0.0.0")


def _rule_descriptor(code: str, slug: str, summary: str, severity: str) -> Dict[str, Any]:
    return {
        "id": code,
        "name": slug,
        "shortDescription": {"text": summary},
        "helpUri": f"{_DOCS_URI}#{code.lower()}",
        "defaultConfiguration": {"level": severity},
    }


def _location(diag: Diagnostic, uri: str) -> Dict[str, Any]:
    region: Dict[str, Any] = {}
    if diag.span is not None:
        region["startLine"] = diag.span.line
        region["startColumn"] = diag.span.col
        if diag.span.end_line is not None:
            region["endLine"] = diag.span.end_line
        if diag.span.end_col is not None:
            region["endColumn"] = diag.span.end_col
    else:
        region["startLine"] = 1
        region["startColumn"] = 1
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": region,
        }
    }


def sarif_log(result: LintResult, *, uri: str | None = None) -> Dict[str, Any]:
    """The SARIF 2.1.0 log for one lint run, as a JSON-ready dict."""
    artifact_uri = uri if uri is not None else result.path
    indices = {code: k for k, code in enumerate(rule_codes())}
    results = []
    for d in result.diagnostics:
        entry: Dict[str, Any] = {
            "ruleId": d.code,
            "level": d.severity.sarif_level,
            "message": {"text": d.message},
            "locations": [_location(d, artifact_uri)],
        }
        if d.code in indices:
            entry["ruleIndex"] = indices[d.code]
        if d.hint:
            entry["message"]["markdown"] = f"{d.message}\n\n**Fix:** {d.hint}"
        results.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _DOCS_URI,
                        "version": _tool_version(),
                        "rules": [
                            _rule_descriptor(
                                r.code, r.slug, r.summary, r.severity.sarif_level
                            )
                            for r in all_rules()
                        ],
                    }
                },
                "artifacts": [{"location": {"uri": artifact_uri}}],
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(result: LintResult, *, uri: str | None = None) -> str:
    """The SARIF log serialised as pretty-printed JSON text."""
    return json.dumps(sarif_log(result, uri=uri), indent=2)
