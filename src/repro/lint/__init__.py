"""``repro.lint`` -- a rule-based static analyzer for LoopIR and MLDGs.

The fusion framework's preconditions, turned into actionable machine-readable
diagnostics instead of mid-pipeline exceptions:

* **program model** (§1 / Figure 1): single assignment per array, constant
  dependence distances, DOALL innermost loops, well-ordered reads
  (``LF101``-``LF104``, including the static DOALL race detector);
* **fusion legality** (Lemma 2.1, Theorems 2.3/3.1, Definition 2.2):
  fusion-preventing edges, illegal and zero-weight cycles, hard-edge
  inventory (``LF201``-``LF204``);
* **hygiene**: dead arrays, domain-escaping writes (``LF301``-``LF302``).

Every diagnostic carries a stable code, a severity, a source span (when the
program came from DSL text) and a fix-it hint.  Output formats: classic
compiler text, JSON, and SARIF 2.1.0 for GitHub code scanning.  Inline
``! lint: disable=LF###`` comments suppress diagnostics.

    >>> from repro.lint import lint_source
    >>> res = lint_source("do i = 0, n\\n  doall j = 0, m\\n"
    ...                   "    a[i][j] = a[i][j-1]\\n  end\\nend")
    >>> [d.code for d in res.diagnostics]
    ['LF103']
"""

from repro.lint.diagnostics import Diagnostic, LintResult, Severity
from repro.lint.doall import DoallRace, static_doall_races
from repro.lint.engine import (
    LintContext,
    diagnostics_from_legality,
    diagnostics_from_model_findings,
    lint_mldg,
    lint_nest,
    lint_source,
)
from repro.lint.registry import Rule, all_rules, get_rule, rule_codes
from repro.lint.sarif import SARIF_VERSION, render_sarif, sarif_log

__all__ = [
    "Diagnostic",
    "LintResult",
    "Severity",
    "DoallRace",
    "static_doall_races",
    "LintContext",
    "lint_source",
    "lint_nest",
    "lint_mldg",
    "diagnostics_from_legality",
    "diagnostics_from_model_findings",
    "Rule",
    "all_rules",
    "get_rule",
    "rule_codes",
    "SARIF_VERSION",
    "sarif_log",
    "render_sarif",
]
