"""The analyzer engine: run every registered rule over a program or MLDG.

Entry points:

* :func:`lint_source` -- DSL text in, :class:`LintResult` out.  Parse
  failures become an ``LF001`` diagnostic instead of an exception, and
  ``lint: disable=`` suppression comments are honored.
* :func:`lint_nest` -- an already-parsed :class:`LoopNest` (spans are
  available when the nest came from the parser).
* :func:`lint_mldg` -- an abstract dependence graph with no source program
  (gallery figures, random graphs); only graph-layer rules fire.

The :class:`LintContext` caches the shared expensive artifacts (model
findings, the dependence table, the legality report) so each rule stays a
simple generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import rules as _analysis_rules  # noqa: F401  (populates the registry)
from repro.analysis.engine import AnalysisReport, analyze_nest
from repro.depend.extract import DependenceRecord, dependence_table, extract_mldg, records_by_edge
from repro.graph.legality import LegalityReport, check_legal
from repro.graph.mldg import MLDG
from repro.lint import rules as _rules  # noqa: F401  (imports populate the registry)
from repro.lint.diagnostics import Diagnostic, LintResult, Severity
from repro.lint.registry import all_rules
from repro.loopir.ast_nodes import LoopNest, SourceSpan
from repro.loopir.parser import FILE_WIDE, ParseError, collect_lint_suppressions, parse_program
from repro.loopir.validate import ModelFinding, model_findings
from repro.vectors import IVec

__all__ = [
    "LintContext",
    "lint_source",
    "lint_nest",
    "lint_mldg",
    "diagnostics_from_legality",
    "diagnostics_from_model_findings",
]


@dataclass
class LintContext:
    """Everything a rule may inspect, with lazily cached shared analyses."""

    nest: Optional[LoopNest] = None
    mldg: Optional[MLDG] = None
    records: Optional[List[DependenceRecord]] = None
    path: str = "<input>"
    source: Optional[str] = None

    _model: Optional[List[ModelFinding]] = field(default=None, repr=False)
    _legal: Optional[LegalityReport] = field(default=None, repr=False)
    _edge_index: Optional[Dict[Tuple[str, str], List[DependenceRecord]]] = field(
        default=None, repr=False
    )
    _analysis: Optional[AnalysisReport] = field(default=None, repr=False)

    def analysis(self) -> Optional[AnalysisReport]:
        """The semantic analysis report (LF4xx rules, LF103 witnesses).

        ``None`` without a nest or without a dependence table -- multiple
        writers (LF101) make the table ambiguous, so the analysis layer
        stays silent rather than guessing.
        """
        if self.nest is None or self.records is None:
            return None
        if self._analysis is None:
            self._analysis = analyze_nest(
                self.nest, records=self.records, path=self.path
            )
        return self._analysis

    def model_findings(self) -> List[ModelFinding]:
        if self.nest is None:
            return []
        if self._model is None:
            self._model = model_findings(self.nest)
        return self._model

    def legal_report(self) -> Optional[LegalityReport]:
        if self.mldg is None:
            return None
        if self._legal is None:
            self._legal = check_legal(self.mldg)
        return self._legal

    def span_for_edge(
        self, src: str, dst: str, vector: Optional[IVec] = None
    ) -> Optional[SourceSpan]:
        """Source span of the read inducing the edge (or one of its vectors)."""
        if self.records is None:
            return None
        if self._edge_index is None:
            self._edge_index = records_by_edge(self.records)
        recs = self._edge_index.get((src, dst), [])
        if vector is not None:
            for rec in recs:
                if rec.vector == vector:
                    return _record_span(rec)
        return _record_span(recs[0]) if recs else None


def _record_span(rec: DependenceRecord) -> Optional[SourceSpan]:
    if rec.ref is not None and rec.ref.span is not None:
        return rec.ref.span
    return rec.consumer.span


def _sort_key(d: Diagnostic) -> Tuple:
    if d.span is None:
        return (1, 0, 0, d.code)
    return (0, d.span.line, d.span.col, d.code)


def _apply_suppressions(
    diagnostics: List[Diagnostic], suppressions: Dict[int, Set[str]]
) -> List[Diagnostic]:
    if not suppressions:
        return diagnostics
    file_wide = suppressions.get(FILE_WIDE, set())
    kept = []
    for d in diagnostics:
        codes = set(file_wide)
        if d.span is not None:
            codes |= suppressions.get(d.span.line, set())
        if d.code not in codes:
            kept.append(d)
    return kept


def _run(ctx: LintContext, suppressions: Optional[Dict[int, Set[str]]] = None) -> LintResult:
    diagnostics: List[Diagnostic] = []
    for r in all_rules():
        diagnostics.extend(r.run(ctx))
    diagnostics = _apply_suppressions(diagnostics, suppressions or {})
    diagnostics.sort(key=_sort_key)
    return LintResult(diagnostics=diagnostics, path=ctx.path)


def lint_nest(
    nest: LoopNest,
    *,
    path: str = "<nest>",
    source: Optional[str] = None,
) -> LintResult:
    """Lint a parsed (or programmatically built) loop nest.

    When no statement-level model violation prevents it, the nest's MLDG is
    extracted so the graph-layer rules run too.  ``source`` (when the nest
    came from DSL text) enables suppression comments.
    """
    ctx = LintContext(nest=nest, path=path, source=source)
    findings = ctx.model_findings()
    # Multiple writers make the dependence table ambiguous; graph extraction
    # is only meaningful without LF101 findings.
    if not any(f.code == "LF101" for f in findings):
        ctx.records = dependence_table(nest, check=False)
        ctx.mldg = extract_mldg(nest, check=False)
    suppressions = collect_lint_suppressions(source) if source else None
    return _run(ctx, suppressions)


def lint_source(source: str, *, path: str = "<input>") -> LintResult:
    """Lint DSL text; parse errors become an ``LF001`` diagnostic."""
    try:
        nest = parse_program(source)
    except ParseError as exc:
        diag = Diagnostic(
            code="LF001",
            severity=Severity.ERROR,
            message=str(exc),
            span=SourceSpan(line=exc.line, col=getattr(exc, "col", 1)),
            hint="see docs/DSL.md for the grammar",
        )
        return LintResult(diagnostics=[diag], path=path)
    return lint_nest(nest, path=path, source=source)


def lint_mldg(g: MLDG, *, path: str = "<mldg>") -> LintResult:
    """Lint an abstract MLDG (graph-layer rules only)."""
    return _run(LintContext(mldg=g, path=path))


# ---------------------------------------------------------------------- #
# conversions used by the fusion pipeline to attach diagnostics to errors
# ---------------------------------------------------------------------- #

_LEGALITY_CODE = {
    "negative-cycle": "LF202",
    "negative-outer-distance": "LF102",
    "doall-self-dependence": "LF103",
    "backward-same-iteration": "LF104",
}


def diagnostics_from_legality(report: LegalityReport) -> List[Diagnostic]:
    """Structured diagnostics for a failed legality check (driver gating)."""
    return [
        Diagnostic(
            code=_LEGALITY_CODE.get(f.kind, "LF202"),
            severity=Severity.ERROR,
            message=f.message,
        )
        for f in report.findings
    ]


def diagnostics_from_model_findings(findings: List[ModelFinding]) -> List[Diagnostic]:
    """Structured diagnostics for program-model violations (pipeline gating)."""
    return [
        Diagnostic(
            code=f.code,
            severity=Severity.ERROR,
            message=f.message,
            span=f.span,
            hint=f.hint,
        )
        for f in findings
    ]
