"""Static DOALL race detection on MLDGs.

The static complement of :func:`repro.verify.doall.runtime_doall_violations`:
instead of scanning executed statement instances for same-row conflicts, this
inspects dependence vectors.  A loop body claimed to be DOALL races exactly
when some dependence *inside that body* has an equal first (outermost)
coordinate but a nonzero later coordinate -- two inner iterations of the same
outer iteration would then touch the same cell (Property 4.1 of the paper).

Two granularities:

* ``fused=False`` (default) -- every MLDG node is its own claimed-DOALL
  loop, so only **self**-dependences can race.  This is the program-model
  check of §1 at graph level.
* ``fused=True`` -- all nodes share one fused innermost loop (the situation
  after fusion), so **every** edge's vectors are intra-body.  A clean result
  is exactly :func:`repro.retiming.verify.is_doall_after_fusion`; a nonempty
  one predicts the cells the runtime scan would flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = ["DoallRace", "static_doall_races"]


@dataclass(frozen=True)
class DoallRace:
    """One statically detected DOALL violation: an intra-body inner dependence."""

    src: str
    dst: str
    vector: IVec

    def __str__(self) -> str:
        kind = "self-dependence" if self.src == self.dst else "dependence"
        return (
            f"{self.src} -> {self.dst} {kind} {self.vector}: equal outermost "
            "coordinate with nonzero inner offset -- iterations "
            f"j and j{'-' if self.vector[1] >= 0 else '+'}{abs(self.vector[1])} "
            "of one row touch the same cell"
        )


def static_doall_races(g: MLDG, *, fused: bool = False) -> List[DoallRace]:
    """All dependence vectors that break a claimed-DOALL innermost loop.

    Empty result == the claimed-DOALL loops are race-free.  With
    ``fused=True`` the whole node set is treated as one fused body, so the
    result is empty iff the fused innermost loop is DOALL (Property 4.1).
    """
    races: List[DoallRace] = []
    for e in g.edges():
        if not fused and e.src != e.dst:
            continue
        for d in e.vectors:
            if d[0] == 0 and not d.is_zero():
                races.append(DoallRace(e.src, e.dst, d))
    return races
