"""Diagnostic records produced by the static analyzer.

A :class:`Diagnostic` is one finding: a stable code (``LF101``), a severity,
a human-readable message, an optional source span and an optional fix-it
hint.  :class:`LintResult` bundles the diagnostics of one lint run with the
exit-code policy of the CLI (0 = clean, 1 = warnings only, 2 = errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.loopir.ast_nodes import SourceSpan

__all__ = ["Severity", "Diagnostic", "LintResult"]


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value for this severity."""
        return {"info": "note", "warning": "warning", "error": "error"}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


@dataclass(frozen=True)
class Diagnostic:
    """One structured analyzer finding."""

    code: str  # stable rule code, e.g. "LF201"
    severity: Severity
    message: str
    span: Optional[SourceSpan] = None
    hint: Optional[str] = None  # fix-it suggestion

    def format(self, path: str = "<input>") -> str:
        """The classic compiler one-liner, plus an indented hint line."""
        loc = f"{path}:{self.span.line}:{self.span.col}" if self.span else path
        text = f"{loc}: {self.severity.value}[{self.code}]: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.span is not None:
            d["line"] = self.span.line
            d["column"] = self.span.col
            if self.span.end_line is not None:
                d["endLine"] = self.span.end_line
            if self.span.end_col is not None:
                d["endColumn"] = self.span.end_col
        if self.hint:
            d["hint"] = self.hint
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (process-pool / wire round-trips)."""
        span = None
        if "line" in d:
            span = SourceSpan(
                line=int(d["line"]),
                col=int(d.get("column", 1)),
                end_line=d.get("endLine"),
                end_col=d.get("endColumn"),
            )
        return cls(
            code=str(d["code"]),
            severity=Severity(d.get("severity", "warning")),
            message=str(d.get("message", "")),
            span=span,
            hint=d.get("hint"),
        )


@dataclass
class LintResult:
    """The diagnostics of one lint run over one program or MLDG."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    path: str = "<input>"

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    @property
    def codes(self) -> List[str]:
        """Distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 = clean (infos allowed), 1 = warnings, 2 = errors."""
        if self.has_errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def summary(self) -> str:
        n_err, n_warn, n_info = len(self.errors), len(self.warnings), len(self.infos)
        if not self.diagnostics:
            return "clean: no diagnostics"
        parts = []
        if n_err:
            parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
        if n_warn:
            parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
        if n_info:
            parts.append(f"{n_info} note{'s' if n_info != 1 else ''}")
        return ", ".join(parts)

    def render_text(self) -> str:
        lines = [d.format(self.path) for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "notes": len(self.infos),
                "exitCode": self.exit_code,
            },
        }
