"""Flow-dependence extraction from loop nests.

The program model is single-assignment per array (enforced by
:func:`repro.loopir.validate.validate_program`), so every read of a written
array has exactly one producer statement and one constant dependence
vector.  Reads of input arrays (never written) carry no dependence.

Intra-loop same-iteration dependencies (vector ``(0, 0)`` inside one loop
body) are *not* recorded as MLDG self-loops: statement order within the
body preserves them under any fusion, and a ``(0,0)`` self-loop would
wrongly mark the graph deadlocked.  Every other flow dependence becomes an
edge vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.mldg import MLDG
from repro.loopir.ast_nodes import ArrayRef, Assignment, LoopNest
from repro.loopir.validate import validate_program
from repro.vectors import IVec

__all__ = ["extract_mldg", "dependence_table", "records_by_edge", "DependenceRecord"]


@dataclass(frozen=True)
class DependenceRecord:
    """One flow dependence: producer/consumer loops, statements and vector.

    ``ref`` is the consuming :class:`~repro.loopir.ast_nodes.ArrayRef`
    itself, so diagnostics can point at the exact read (its ``span``) that
    induces the dependence.
    """

    array: str
    src: str  # producer loop label
    dst: str  # consumer loop label
    vector: IVec
    producer: Assignment
    consumer: Assignment
    ref: Optional[ArrayRef] = None  # the consuming read

    def __str__(self) -> str:
        return (
            f"{self.src} -> {self.dst} {self.vector} via '{self.array}' "
            f"({self.producer.target} ... read {self.array})"
        )


def dependence_table(nest: LoopNest, *, check: bool = True) -> List[DependenceRecord]:
    """All flow dependencies of the nest (Definition 2.1).

    One record per *distinct offset* a statement reads an array at: an
    expression like ``a[i][j-1] + a[i][j-1]`` induces one dependence, not
    two, while ``a[i][j-1] + a[i][j-2]`` induces two.  Each record's ``ref``
    is a consuming :class:`~repro.loopir.ast_nodes.ArrayRef`, preferring one
    that carries a source span so diagnostics (LF204, witness reporting)
    can always point at the exact read.

    With ``check`` (default) the nest is validated against the program model
    first, so the resulting vectors are guaranteed meaningful.
    """
    if check:
        validate_program(nest)

    writers: Dict[str, Tuple[str, Assignment]] = nest.writers()
    records: List[DependenceRecord] = []
    for loop in nest.loops:
        for stmt in loop.statements:
            seen: Dict[Tuple[str, IVec], int] = {}
            for ref in stmt.reads():
                if ref.array not in writers:
                    continue
                w_label, w_stmt = writers[ref.array]
                vector = w_stmt.target.offset - ref.offset
                if w_label == loop.label and vector.is_zero():
                    # intra-body same-iteration flow: preserved by statement
                    # order, not an MLDG edge (see module docstring)
                    continue
                key = (ref.array, ref.offset)
                if key in seen:
                    # duplicate read at the same offset: keep one record,
                    # upgrading its ref if this occurrence has a span and
                    # the recorded one does not
                    k = seen[key]
                    if records[k].ref is not None and records[k].ref.span is None and ref.span is not None:
                        records[k] = DependenceRecord(
                            array=ref.array,
                            src=w_label,
                            dst=loop.label,
                            vector=vector,
                            producer=w_stmt,
                            consumer=stmt,
                            ref=ref,
                        )
                    continue
                seen[key] = len(records)
                records.append(
                    DependenceRecord(
                        array=ref.array,
                        src=w_label,
                        dst=loop.label,
                        vector=vector,
                        producer=w_stmt,
                        consumer=stmt,
                        ref=ref,
                    )
                )
    return records


def records_by_edge(
    records: List[DependenceRecord],
) -> Dict[Tuple[str, str], List[DependenceRecord]]:
    """Index dependence records by MLDG edge ``(src, dst)``.

    The per-edge lists preserve extraction order, so the first record of an
    edge is the textually first read inducing it -- the natural anchor for
    edge-level diagnostics.
    """
    index: Dict[Tuple[str, str], List[DependenceRecord]] = {}
    for rec in records:
        index.setdefault((rec.src, rec.dst), []).append(rec)
    return index


def extract_mldg(nest: LoopNest, *, check: bool = True) -> MLDG:
    """Build the MLDG of a loop nest (Definition 2.2).

    Nodes appear in program order (one per DOALL loop, including loops with
    no dependencies); edges accumulate the full ``D_L`` vector sets.
    """
    g = MLDG(dim=nest.dim)
    for loop in nest.loops:
        g.add_node(loop.label)
    for rec in dependence_table(nest, check=check):
        g.add_dependence(rec.src, rec.dst, rec.vector)
    return g
