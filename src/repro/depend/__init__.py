"""Dependence analysis: loop-nest program -> MLDG.

Implements Definition 2.1 for the uniform-access program model: for a value
written by loop ``u`` as ``X[i+a][j+b]`` and read by loop ``v`` as
``X[i+c][j+d]``, the loop dependence vector is
``(a - c, b - d)`` (consumer iteration minus producer iteration).

* :func:`~repro.depend.extract.extract_mldg` -- build the full MLDG;
* :func:`~repro.depend.extract.dependence_table` -- the raw per-edge
  vector sets with the contributing statement pairs (for reporting);
* :mod:`~repro.depend.classify` -- per-dependence classification
  (self-dependence, outermost-loop-carried, fusion-preventing, ...).
"""

from repro.depend.extract import (
    DependenceRecord,
    dependence_table,
    extract_mldg,
)
from repro.depend.classify import DependenceKind, classify_dependence, describe_dependencies

__all__ = [
    "extract_mldg",
    "dependence_table",
    "DependenceRecord",
    "DependenceKind",
    "classify_dependence",
    "describe_dependencies",
]
