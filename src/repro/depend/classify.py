"""Classification of extracted dependencies (Section 2.1 terminology)."""

from __future__ import annotations

from typing import List

from repro.depend.extract import DependenceRecord
from repro.graph.legality import VectorClass, classify_vector

__all__ = ["DependenceKind", "classify_dependence", "describe_dependencies"]


class DependenceKind:
    """Paper terms for a dependence between two loops (Section 2.1)."""

    SELF = "self-dependence"
    OUTER_CARRIED = "outmost-loop-carried"
    SAME_ITERATION = "same-outer-iteration"


def classify_dependence(rec: DependenceRecord) -> str:
    """Section 2.1's taxonomy.

    * *self-dependence*: produced and consumed by the same innermost loop
      (e.g. the ``c`` values in the paper's loop C);
    * *outmost-loop-carried*: the value crosses outermost iterations
      (``d[0] > 0``), e.g. loop D's ``e`` consumed by loop A;
    * *same-outer-iteration*: produced and consumed within one outermost
      iteration (``d[0] == 0``) -- the only dependencies that can be
      fusion-preventing.
    """
    if rec.src == rec.dst:
        return DependenceKind.SELF
    if rec.vector[0] > 0:
        return DependenceKind.OUTER_CARRIED
    return DependenceKind.SAME_ITERATION


def describe_dependencies(records: List[DependenceRecord]) -> str:
    """Readable report used by the CLI: one line per dependence, with the
    Section-3.1 fusion classification appended."""
    lines = []
    for rec in records:
        kind = classify_dependence(rec)
        fusion = classify_vector(rec.vector)
        marker = "  <-- fusion-preventing" if fusion == VectorClass.FUSION_PREVENTING else ""
        lines.append(f"{rec.src} -> {rec.dst} {rec.vector} [{kind}]{marker}")
    return "\n".join(lines)
