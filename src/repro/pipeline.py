"""One-call source-to-parallel pipeline.

:func:`fuse_program` runs the strict pass sequence (parse -> validate ->
lint -> extract-mldg -> legality -> fuse -> verify-retiming -> codegen)
through an ephemeral :class:`repro.core.Session` and returns everything a
caller typically wants in one object; :func:`fuse_and_verify` additionally
executes the transformation against the original program.  The CLI and
the examples are thin wrappers over these; callers wanting persistent
caches, session-scoped observability or batch compilation should hold a
:class:`repro.core.Session` directly (docs/ARCHITECTURE.md).

Fusion is *gated* on error-severity static diagnostics: a program that
violates the §1 model raises :class:`~repro.loopir.ValidationError` carrying
the full structured finding list, and an illegal MLDG raises
:class:`~repro.fusion.errors.IllegalMLDGError` with its diagnostics attached.
Warning/info diagnostics never block; they ride along on
:attr:`PipelineResult.diagnostics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.codegen import emit_fused_program
from repro.codegen.fused import DeadlockError, FusedProgram
from repro.fusion import FusionResult, Strategy
from repro.graph.mldg import MLDG
from repro.lint.diagnostics import Diagnostic
from repro.loopir import LoopNest
from repro.resilience.budget import Budget

__all__ = ["PipelineResult", "fuse_program", "fuse_and_verify"]


@dataclass
class PipelineResult:
    """Everything produced by one run of the fusion pipeline."""

    nest: LoopNest
    mldg: MLDG
    fusion: FusionResult
    fused: Optional[FusedProgram]  # None when the body admits no order
    notes: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)  # non-blocking lint findings

    @property
    def retiming(self):
        return self.fusion.retiming

    @property
    def parallelism(self):
        return self.fusion.parallelism

    def emitted_code(self) -> str:
        """The transformed program's source (Figure-12b shape)."""
        if self.fused is None:
            raise DeadlockError(["<no fused body order exists>"])
        return emit_fused_program(self.fused)


def fuse_program(
    source: Union[str, LoopNest],
    *,
    strategy: Union[Strategy, str] = Strategy.AUTO,
    budget: Optional[Budget] = None,
) -> PipelineResult:
    """Parse (if needed), analyse and fuse a loop-DSL program.

    Accepts DSL text or an already-built :class:`LoopNest`.  Raises the
    pipeline stages' own exceptions (:class:`~repro.loopir.ParseError`,
    :class:`~repro.loopir.ValidationError`,
    :class:`~repro.fusion.FusionError`) unchanged.  ``budget`` is passed
    through to :func:`repro.fusion.fuse`; exhaustion raises
    :class:`~repro.resilience.budget.BudgetExceededError` (use
    :func:`repro.resilience.fuse_program_resilient` for degradation
    instead of an error).

    This is a thin shim over an ephemeral :class:`repro.core.Session`
    sharing the process-wide caches and observability -- behavior and
    output are identical to the historical inline pipeline (the golden
    shim tests hold it to that).
    """
    from repro.core.session import Session

    return Session(budget=budget).fuse_program(source, strategy=strategy)


def fuse_and_verify(
    source: Union[str, LoopNest],
    *,
    strategy: Union[Strategy, str] = Strategy.AUTO,
    sizes: Optional[List[tuple]] = None,
    seeds: Optional[List[int]] = None,
) -> PipelineResult:
    """:func:`fuse_program` plus end-to-end execution verification.

    Appends a verification note and raises ``AssertionError`` if any
    randomised parallel execution of the fused program differs from the
    original -- i.e. the returned result is *proven* on concrete runs.
    """
    from repro.verify import verify_fusion_result

    out = fuse_program(source, strategy=strategy)
    reports = verify_fusion_result(out.nest, out.fusion, sizes=sizes, seeds=seeds)
    bad = [r for r in reports if not r.equivalent]
    if bad:
        raise AssertionError(
            f"fused program diverges from the original in {len(bad)} of "
            f"{len(reports)} executions (first: mode={bad[0].mode}, "
            f"n={bad[0].n}, m={bad[0].m})"
        )
    out.notes.append(
        f"verified: {len(reports)} randomised executions bit-identical"
    )
    return out
