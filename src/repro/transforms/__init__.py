"""Unimodular loop transformations (interchange, reversal, skewing).

Section 1 situates the paper against single-loop transformations -- "loop
interchange, loop permutation, loop skewing, loop reversal" -- that
optimise one nest but do not fuse.  This package implements them over
MLDGs so they can be

* **compared** against retiming-based fusion (can interchange or skewing
  alone parallelise the innermost loop? usually not when multiple loops
  are involved), and
* **composed** with it: the wavefront result of Algorithm 5 becomes an
  ordinary row-parallel nest under the skew that maps hyperplanes to rows
  (:func:`~repro.transforms.unimodular.wavefront_transform`), which is how
  a real compiler would emit Algorithm 5's schedule as loop code.
"""

from repro.transforms.unimodular import (
    Unimodular,
    interchange,
    reversal,
    skew,
    transform_mldg,
    wavefront_transform,
)

__all__ = [
    "Unimodular",
    "interchange",
    "reversal",
    "skew",
    "wavefront_transform",
    "transform_mldg",
]
