"""2-D unimodular transformations of iteration spaces.

A unimodular matrix ``T`` (integer entries, determinant +/-1) maps
iteration ``x`` to ``T x`` and therefore dependence vector ``d`` to
``T d``.  The transformed loop nest is *sequentially valid* when every
transformed vector is lexicographically positive (dependencies still flow
forward), and its innermost loop is parallel when no transformed vector
has the form ``(0, k != 0)``.

The named constructors cover the classic catalogue:

* :func:`interchange` -- swap the two loops (``[[0,1],[1,0]]``);
* :func:`reversal` -- run one loop backwards;
* :func:`skew` -- add a multiple of one index to the other;
* :func:`wavefront_transform` -- complete a schedule vector ``s`` (with
  coprime entries, e.g. Lemma 4.3's ``(s0, 1)``) to a unimodular basis
  whose first row is ``s``: transformed first coordinates are exactly the
  wavefront levels ``s . x``, so Algorithm 5's hyperplane execution is the
  plain row-by-row execution of the transformed nest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.graph.mldg import MLDG
from repro.vectors import IVec

__all__ = [
    "Unimodular",
    "interchange",
    "reversal",
    "skew",
    "wavefront_transform",
    "transform_mldg",
]


@dataclass(frozen=True)
class Unimodular:
    """A 2x2 integer matrix with determinant +/-1, applied as ``x -> T x``."""

    rows: Tuple[Tuple[int, int], Tuple[int, int]]

    def __post_init__(self) -> None:
        (a, b), (c, d) = self.rows
        det = a * d - b * c
        if det not in (1, -1):
            raise ValueError(f"matrix {self.rows} has determinant {det}, not +/-1")

    @property
    def det(self) -> int:
        (a, b), (c, d) = self.rows
        return a * d - b * c

    def apply(self, v: IVec) -> IVec:
        if v.dim != 2:
            raise ValueError("2-D transformation applied to non-2-D vector")
        (a, b), (c, d) = self.rows
        return IVec(a * v[0] + b * v[1], c * v[0] + d * v[1])

    def compose(self, other: "Unimodular") -> "Unimodular":
        """``self.compose(other)`` applies ``other`` first: ``x -> self (other x)``."""
        (a, b), (c, d) = self.rows
        (e, f), (g, h) = other.rows
        return Unimodular(
            rows=(
                (a * e + b * g, a * f + b * h),
                (c * e + d * g, c * f + d * h),
            )
        )

    def inverse(self) -> "Unimodular":
        (a, b), (c, d) = self.rows
        det = self.det
        return Unimodular(rows=((d * det, -b * det), (-c * det, a * det)))

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self.rows)

    def __str__(self) -> str:
        (a, b), (c, d) = self.rows
        return f"[[{a}, {b}], [{c}, {d}]]"


def interchange() -> Unimodular:
    """Swap the outer and inner loops."""
    return Unimodular(rows=((0, 1), (1, 0)))


def reversal(axis: int) -> Unimodular:
    """Run loop ``axis`` (0 = outer, 1 = inner) backwards."""
    if axis == 0:
        return Unimodular(rows=((-1, 0), (0, 1)))
    if axis == 1:
        return Unimodular(rows=((1, 0), (0, -1)))
    raise ValueError("axis must be 0 or 1")


def skew(factor: int, *, of: int = 1, by: int | None = None) -> Unimodular:
    """Skew index ``of`` by ``factor`` times index ``by`` (defaults: inner by outer).

    ``skew(f)`` maps ``(i, j) -> (i, j + f*i)`` -- the classic wavefront
    enabler for a single nest.  ``by`` defaults to the other index.
    """
    if by is None:
        by = 1 - of
    if {of, by} != {0, 1}:
        raise ValueError("skew needs one source and one target index (0 and 1)")
    if of == 1:
        return Unimodular(rows=((1, 0), (factor, 1)))
    return Unimodular(rows=((1, factor), (0, 1)))


def wavefront_transform(schedule: IVec) -> Unimodular:
    """A unimodular ``T`` whose first row is the schedule vector ``s``.

    Requires ``gcd(s0, s1) = 1`` (Lemma 4.3's schedules end in 1, so this
    always holds for Algorithm 5 results).  The second row is a Bezout
    completion, making ``det T = +/-1``; transformed iterations are
    ``(s . x, p . x)`` and the transformed nest's rows are exactly the
    wavefronts.
    """
    if schedule.dim != 2:
        raise ValueError("wavefront transformation is two-dimensional")
    s0, s1 = schedule[0], schedule[1]
    g = math.gcd(s0, s1)
    if g != 1:
        raise ValueError(f"schedule {schedule} entries are not coprime (gcd {g})")
    # Bezout: find (p, q) with s0*q - s1*p = 1
    # math.gcd's extended form via the classic algorithm:
    old_r, r = s0, s1
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    # old_x*s0 + old_y*s1 == old_r == +/-1
    sign = old_r  # +1 or -1
    p, q = -old_y * sign, old_x * sign  # so that s0*q - s1*p == 1
    return Unimodular(rows=((s0, s1), (p, q)))


def transform_mldg(g: MLDG, t: Unimodular) -> MLDG:
    """The MLDG with every dependence vector mapped through ``t``."""
    if g.dim != 2:
        raise ValueError("2-D transformation applied to non-2-D MLDG")
    out = MLDG(dim=2)
    for node in g.nodes:
        out.add_node(node)
    for e in g.edges():
        out.add_dependence(e.src, e.dst, *(t.apply(d) for d in e.vectors))
    return out
