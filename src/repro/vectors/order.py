"""Lexicographic-order helpers over :class:`~repro.vectors.vector.IVec`.

The paper's Section 2.1 defines the *minimal loop dependence vector* of an
edge as the lexicographic minimum of its dependence-vector set, and Section
2.3 defines a *strict schedule vector* ``s`` as one with ``s . d > 0`` for
every non-zero dependence vector ``d``.  This module collects those order
operations so every caller spells them the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.vectors.vector import IVec

__all__ = [
    "lex_cmp",
    "lex_min",
    "lex_max",
    "lex_sum",
    "lex_sorted",
    "lex_positive",
    "lex_nonnegative",
    "is_strict_schedule_vector",
]


def lex_cmp(a: Sequence[int], b: Sequence[int]) -> int:
    """Three-way lexicographic comparison: -1 if ``a < b``, 0, or +1.

    Both vectors must have the same dimension.
    """
    if len(a) != len(b):
        raise ValueError("lex_cmp requires equal dimensions")
    ta, tb = tuple(a), tuple(b)
    if ta < tb:
        return -1
    if ta > tb:
        return 1
    return 0


def lex_min(vectors: Iterable[IVec]) -> IVec:
    """Lexicographic minimum of a non-empty collection.

    This is the paper's :math:`\\delta_L(e) = \\min\\{v : v \\in D_L(a,b)\\}`.
    """
    vecs = list(vectors)
    if not vecs:
        raise ValueError("lex_min of an empty collection")
    return min(vecs)


def lex_max(vectors: Iterable[IVec]) -> IVec:
    """Lexicographic maximum of a non-empty collection (used by Algorithm 5)."""
    vecs = list(vectors)
    if not vecs:
        raise ValueError("lex_max of an empty collection")
    return max(vecs)


def lex_sum(vectors: Iterable[IVec]) -> Optional[IVec]:
    """Componentwise sum, or ``None`` for the empty collection.

    Cycle weights :math:`\\delta_L(c) = \\sum_{e \\in c} \\delta_L(e)` use this.
    """
    total: Optional[IVec] = None
    for v in vectors:
        total = v if total is None else total + v
    return total


def lex_sorted(vectors: Iterable[IVec]) -> List[IVec]:
    """The vectors in ascending lexicographic order."""
    return sorted(vectors)


def lex_positive(v: Sequence[int]) -> bool:
    """True iff ``v`` is lexicographically greater than the zero vector."""
    return tuple(v) > tuple([0] * len(v))


def lex_nonnegative(v: Sequence[int]) -> bool:
    """True iff ``v`` is lexicographically >= the zero vector.

    Theorem 3.1: fusion is legal when every edge weight satisfies this.
    """
    return tuple(v) >= tuple([0] * len(v))


def is_strict_schedule_vector(s: IVec, dependence_vectors: Iterable[IVec]) -> bool:
    """Check the strict-schedule condition of Section 2.3.

    ``s`` is a strict schedule vector for a dependence-vector collection when
    ``s . d > 0`` for every *non-zero* vector ``d`` in the collection.  Zero
    vectors (loop-independent dependencies) are exempt by definition.
    """
    for d in dependence_vectors:
        if d.is_zero():
            continue
        if s.dot(d) <= 0:
            return False
    return True
