"""Vectors over :math:`\\mathbb{Z} \\cup \\{\\pm\\infty\\}`.

Algorithm 3's constraint graph (the paper's Figure 9) labels edges with
weights such as ``(-1, inf)``: the inequality ``r(v_j) - r(v_i) <= (-1, inf)``
constrains only the first coordinate, because *any* second coordinate
satisfies it.  Likewise the lexicographic Bellman-Ford initialises every
tentative distance to ``(+inf, +inf)`` (Algorithm 1).

:class:`ExtVec` supports exactly the operations those algorithms need:

* lexicographic comparison where ``-inf < any int < +inf``;
* addition with finite :class:`~repro.vectors.vector.IVec` values and other
  ``ExtVec`` values (infinities absorb: ``inf + k = inf``);
* conversion back to ``IVec`` when all components are finite.

``+inf + (-inf)`` is rejected as undefined.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple, Union

from repro.vectors.vector import IVec

__all__ = ["ExtVec", "POS_INF", "NEG_INF"]

POS_INF = math.inf
NEG_INF = -math.inf

_Component = Union[int, float]


def _check_component(c: _Component) -> _Component:
    if isinstance(c, bool):
        raise TypeError("ExtVec components must be ints or +/-inf, not bool")
    if isinstance(c, int):
        return c
    if isinstance(c, float):
        if math.isinf(c):
            return c
        raise TypeError(f"ExtVec float components must be +/-inf, got {c!r}")
    raise TypeError(f"ExtVec components must be ints or +/-inf, got {c!r}")


class ExtVec(tuple):
    """An extended-integer vector, ordered lexicographically.

    >>> ExtVec(-1, POS_INF) + IVec(3, 4)
    ExtVec(2, inf)
    >>> ExtVec(0, 0) < ExtVec(0, POS_INF)
    True
    """

    __slots__ = ()

    def __new__(cls, *components: Union[_Component, Iterable[_Component]]) -> "ExtVec":
        if len(components) == 1 and not isinstance(components[0], (int, float)):
            items: Tuple[_Component, ...] = tuple(components[0])
        else:
            items = components  # type: ignore[assignment]
        checked = tuple(_check_component(c) for c in items)
        if not checked:
            raise ValueError("ExtVec must have dimension >= 1")
        return tuple.__new__(cls, checked)

    @classmethod
    def top(cls, dim: int) -> "ExtVec":
        """The all ``+inf`` vector -- Algorithm 1's initial tentative distance."""
        return cls([POS_INF] * dim)

    @classmethod
    def from_ivec(cls, v: IVec) -> "ExtVec":
        return cls(tuple(v))

    @property
    def dim(self) -> int:
        return len(self)

    def is_finite(self) -> bool:
        """True iff every component is a plain integer."""
        return all(isinstance(c, int) for c in self)

    def to_ivec(self) -> IVec:
        """Convert to a finite :class:`IVec`; raises if any component is infinite."""
        if not self.is_finite():
            raise ValueError(f"cannot convert non-finite {self!r} to IVec")
        return IVec(tuple(self))

    def _add_components(self, other: Tuple[_Component, ...]) -> "ExtVec":
        if len(other) != len(self):
            raise ValueError("dimension mismatch in ExtVec addition")
        out = []
        for a, b in zip(self, other):
            if (a == POS_INF and b == NEG_INF) or (a == NEG_INF and b == POS_INF):
                raise ValueError("undefined sum +inf + -inf in ExtVec addition")
            s = a + b
            # keep finite sums as ints (float creep would break IVec round-trips)
            out.append(int(s) if not math.isinf(s) else s)
        return ExtVec(out)

    def __add__(self, other: object) -> "ExtVec":  # type: ignore[override]
        if isinstance(other, (ExtVec, IVec)):
            return self._add_components(tuple(other))
        if isinstance(other, tuple):
            return self._add_components(tuple(other))
        return NotImplemented

    __radd__ = __add__

    def __neg__(self) -> "ExtVec":
        return ExtVec(tuple(-c for c in self))

    def __sub__(self, other: object) -> "ExtVec":
        if isinstance(other, tuple):
            return self._add_components(tuple(-c for c in other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"ExtVec({', '.join(map(str, self))})"

    def __str__(self) -> str:
        def fmt(c: _Component) -> str:
            if c == POS_INF:
                return "inf"
            if c == NEG_INF:
                return "-inf"
            return str(c)

        return "(" + ", ".join(fmt(c) for c in self) + ")"
