"""Immutable integer vectors with lexicographic order.

The multi-dimensional retiming framework of the paper manipulates elements of
:math:`\\mathbb{Z}^n` in three roles:

* **loop dependence vectors** ``d_L = (i1 - i2, j1 - j2)`` between a producer
  iteration ``(i2, j2)`` and a consumer iteration ``(i1, j1)`` (Def. 2.1);
* **retiming vectors** ``r(u)`` attached to MLDG nodes (Section 2.3);
* **schedule vectors** and **hyperplanes** (Section 2.3 and Lemma 4.3).

All three are represented by :class:`IVec`.  ``IVec`` subclasses :class:`tuple`
so equality, hashing and comparison are inherited -- and tuple comparison *is*
lexicographic comparison, exactly the order the paper uses.  Arithmetic
operators are overridden to act componentwise.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

__all__ = ["IVec"]

_Scalar = int


class IVec(tuple):
    """An immutable vector in :math:`\\mathbb{Z}^n`, ordered lexicographically.

    Construction accepts either an iterable of integers or the components as
    separate arguments::

        >>> IVec(1, -2)
        IVec(1, -2)
        >>> IVec([1, -2]) == IVec(1, -2)
        True

    Comparison operators (``<``, ``<=``, ...) are inherited from ``tuple`` and
    therefore lexicographic, matching Section 2.1 of the paper:

        >>> IVec(0, 5) < IVec(1, -100)
        True
        >>> IVec(1, -1) <= IVec(1, 0)
        True

    Arithmetic is componentwise; ``+``/``-`` require equal dimension:

        >>> IVec(2, 1) + IVec(-1, -1)
        IVec(1, 0)
        >>> -IVec(1, -2)
        IVec(-1, 2)
        >>> 3 * IVec(1, 2)
        IVec(3, 6)
    """

    __slots__ = ()

    def __new__(cls, *components: Union[_Scalar, Iterable[_Scalar]]) -> "IVec":
        if len(components) == 1 and not isinstance(components[0], int):
            items = tuple(components[0])
        else:
            items = components
        for c in items:
            if not isinstance(c, int) or isinstance(c, bool):
                raise TypeError(
                    f"IVec components must be plain ints, got {c!r} of type {type(c).__name__}"
                )
        if not items:
            raise ValueError("IVec must have dimension >= 1")
        return tuple.__new__(cls, items)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def zero(cls, dim: int) -> "IVec":
        """The all-zeros vector of the given dimension."""
        return cls([0] * dim)

    @classmethod
    def unit(cls, dim: int, axis: int) -> "IVec":
        """The standard basis vector ``e_axis`` of the given dimension."""
        if not 0 <= axis < dim:
            raise ValueError(f"axis {axis} out of range for dimension {dim}")
        return cls([1 if k == axis else 0 for k in range(dim)])

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def dim(self) -> int:
        """Number of components."""
        return len(self)

    @property
    def x(self) -> int:
        """First component (the outermost-loop coordinate)."""
        return self[0]

    @property
    def y(self) -> int:
        """Second component (the innermost-loop coordinate in the 2-D case)."""
        if len(self) < 2:
            raise IndexError("IVec has no second component")
        return self[1]

    def is_zero(self) -> bool:
        """True iff every component is zero."""
        return all(c == 0 for c in self)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #

    def _check_dim(self, other: "IVec") -> None:
        if len(self) != len(other):
            raise ValueError(
                f"dimension mismatch: {len(self)}-vector vs {len(other)}-vector"
            )

    def __add__(self, other: object) -> "IVec":  # type: ignore[override]
        if not isinstance(other, tuple):
            return NotImplemented
        self._check_dim(other)  # type: ignore[arg-type]
        return IVec(a + b for a, b in zip(self, other))

    __radd__ = __add__

    def __sub__(self, other: object) -> "IVec":
        if not isinstance(other, tuple):
            return NotImplemented
        self._check_dim(other)  # type: ignore[arg-type]
        return IVec(a - b for a, b in zip(self, other))

    def __rsub__(self, other: object) -> "IVec":
        if not isinstance(other, tuple):
            return NotImplemented
        self._check_dim(other)  # type: ignore[arg-type]
        return IVec(b - a for a, b in zip(self, other))

    def __neg__(self) -> "IVec":
        return IVec(-a for a in self)

    def __pos__(self) -> "IVec":
        return self

    def __mul__(self, scalar: object) -> "IVec":  # type: ignore[override]
        if not isinstance(scalar, int) or isinstance(scalar, bool):
            return NotImplemented
        return IVec(scalar * a for a in self)

    __rmul__ = __mul__

    def dot(self, other: Iterable[_Scalar]) -> int:
        """Inner product; used for schedule-vector tests ``s . d > 0``."""
        other_t = tuple(other)
        if len(other_t) != len(self):
            raise ValueError("dimension mismatch in dot product")
        return sum(a * b for a, b in zip(self, other_t))

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def with_component(self, axis: int, value: int) -> "IVec":
        """A copy of this vector with one component replaced."""
        if not 0 <= axis < len(self):
            raise IndexError(f"axis {axis} out of range")
        items = list(self)
        items[axis] = value
        return IVec(items)

    def prefix(self, k: int) -> "IVec":
        """The first ``k`` components as an ``IVec``."""
        if not 1 <= k <= len(self):
            raise ValueError(f"prefix length {k} out of range")
        return IVec(self[:k])

    def __repr__(self) -> str:
        return f"IVec({', '.join(map(str, self))})"

    def __str__(self) -> str:
        return "(" + ", ".join(map(str, self)) + ")"

    def __iter__(self) -> Iterator[int]:
        return tuple.__iter__(self)
