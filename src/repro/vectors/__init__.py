"""Lexicographically-ordered integer vector algebra.

This package is the arithmetic substrate for the whole library.  Loop
dependence vectors, retiming vectors, schedule vectors and constraint-graph
weights are all elements of :math:`\\mathbb{Z}^n` compared *lexicographically*
(Sha/O'Neil/Passos, Section 2.1): ``(a, b) < (x, y)`` iff ``a < x`` or
``a == x and b < y``.

Public classes and helpers:

* :class:`~repro.vectors.vector.IVec` -- immutable integer vector with
  componentwise arithmetic and lexicographic comparison.
* :class:`~repro.vectors.extended.ExtVec` -- vector whose components may be
  ``+inf``/``-inf``; used for constraint-graph weights that constrain only a
  prefix of the coordinates (the paper's Figure 9 writes such weights as
  ``(-1, inf)``).
* :mod:`~repro.vectors.order` -- lexicographic ``lex_min``/``lex_max``/
  ``lex_sum`` and schedule-vector predicates.
"""

from repro.vectors.vector import IVec
from repro.vectors.extended import ExtVec, NEG_INF, POS_INF
from repro.vectors.order import (
    is_strict_schedule_vector,
    lex_cmp,
    lex_max,
    lex_min,
    lex_nonnegative,
    lex_positive,
    lex_sorted,
    lex_sum,
)

__all__ = [
    "IVec",
    "ExtVec",
    "POS_INF",
    "NEG_INF",
    "lex_cmp",
    "lex_min",
    "lex_max",
    "lex_sum",
    "lex_sorted",
    "lex_positive",
    "lex_nonnegative",
    "is_strict_schedule_vector",
]
