"""Example MLDGs and loop-nest programs.

* :mod:`repro.gallery.paper` -- the paper's own figures, transcribed exactly:
  Figure 2 (the running 4-node cyclic 2LDG with its source code), Figure 8
  (the 7-node acyclic 2LDG) and Figure 14 (the 7-node cyclic 2LDG needing
  hyperplane parallelism), plus the expected retimings from Figures 6, 10,
  12 and 15 for verification.
* :mod:`repro.gallery.common` -- the "common MLDG" kernels completing the
  Section-5 experiment set (2-D IIR filter section; Floyd-Steinberg error
  diffusion), each given both as an MLDG and as runnable loop-IR source.
"""

from repro.gallery.paper import (
    figure2_code,
    figure2_expected_alg4_retiming,
    figure2_expected_llofra_retiming,
    figure2_mldg,
    figure8_expected_retiming,
    figure8_mldg,
    figure14_expected_retiming,
    figure14_mldg,
)
from repro.gallery.extended import ExtendedKernel, extended_kernels
from repro.gallery.common import (
    all_section5_examples,
    floyd_steinberg_mldg,
    iir2d_mldg,
    phantom_dependence_code,
    phantom_dependence_mldg,
    Section5Example,
)

__all__ = [
    "figure2_mldg",
    "figure2_code",
    "figure2_expected_llofra_retiming",
    "figure2_expected_alg4_retiming",
    "figure8_mldg",
    "figure8_expected_retiming",
    "figure14_mldg",
    "figure14_expected_retiming",
    "iir2d_mldg",
    "floyd_steinberg_mldg",
    "phantom_dependence_code",
    "phantom_dependence_mldg",
    "Section5Example",
    "all_section5_examples",
    "ExtendedKernel",
    "extended_kernels",
]
