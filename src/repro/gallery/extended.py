"""Extended workload gallery: kernels beyond the paper's evaluation set.

Six additional multi-loop kernels from the paper's motivating domains
(image processing, signal processing, scientific relaxation), each given
as loop-DSL source.  They widen the evaluation beyond the five Section-5
graphs: different loop counts, dependence mixes and algorithm outcomes.
The MLDGs are *extracted from the source* (never transcribed), so code and
graph cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from textwrap import dedent
from typing import List, Optional

from repro.depend import extract_mldg
from repro.graph.mldg import MLDG
from repro.loopir import parse_program

__all__ = ["ExtendedKernel", "extended_kernels"]


@dataclass(frozen=True)
class ExtendedKernel:
    """One extended-evaluation workload."""

    key: str
    title: str
    code: str
    expected_strategy: str  # repro.fusion.Strategy value
    domain: str

    def nest(self):
        return parse_program(self.code)

    def mldg(self) -> MLDG:
        return extract_mldg(self.nest())


def _k(key: str, title: str, domain: str, expected: str, code: str) -> ExtendedKernel:
    return ExtendedKernel(
        key=key,
        title=title,
        code=dedent(code).strip(),
        expected_strategy=expected,
        domain=domain,
    )


def extended_kernels() -> List[ExtendedKernel]:
    """The extended workload set, in a stable order."""
    return [
        _k(
            "jacobi-pair",
            "Jacobi smoother + residual (acyclic, fusion-preventing)",
            "scientific",
            "acyclic",
            """
            do i = 0, n
              doall j = 0, m        ! loop Smooth
                u[i][j] = 0.25 * (f[i][j] + f[i-1][j] + f[i-1][j-1] + f[i-2][j])
              end
              doall j = 0, m        ! loop Resid
                r[i][j] = f[i][j] - u[i][j+1] + u[i][j-1]
              end
            end
            """,
        ),
        _k(
            "separable-filter",
            "Separable filter: horizontal then vertical pass",
            "image",
            "acyclic",
            """
            do i = 0, n
              doall j = 0, m        ! loop Horiz
                h[i][j] = 0.5 * (p[i][j] + p[i][j-1]) + 0.25 * p[i][j+1]
              end
              doall j = 0, m        ! loop Vert
                v[i][j] = 0.5 * (h[i][j] + h[i-1][j]) + 0.25 * h[i-2][j+2]
              end
              doall j = 0, m        ! loop Norm
                q[i][j] = v[i][j+3] - v[i][j]
              end
            end
            """,
        ),
        _k(
            "lattice-filter",
            "Lattice filter section with feed-forward/feed-back pair",
            "dsp",
            "cyclic",
            """
            do i = 0, n
              doall j = 0, m        ! loop Fwd
                f[i][j] = x[i][j] + 0.3 * g[i-1][j+1]
              end
              doall j = 0, m        ! loop Bwd
                g[i][j] = 0.3 * f[i][j] - f[i][j-2] + 0.1 * g[i-1][j]
              end
            end
            """,
        ),
        _k(
            "multirate-cascade",
            "Multirate cascade: five stages with mixed distances",
            "dsp",
            "acyclic",
            """
            do i = 0, n
              doall j = 0, m        ! loop S1
                a[i][j] = x[i][j] + x[i-1][j+2]
              end
              doall j = 0, m        ! loop S2
                b[i][j] = a[i][j+1] - a[i][j-1]
              end
              doall j = 0, m        ! loop S3
                c[i][j] = b[i][j+4] + a[i][j]
              end
              doall j = 0, m        ! loop S4
                d[i][j] = c[i][j] - b[i-1][j-3]
              end
              doall j = 0, m        ! loop S5
                y[i][j] = d[i][j+2] + c[i-1][j]
              end
            end
            """,
        ),
        _k(
            "time-marching",
            "Time-marching scheme with predictor/corrector feedback",
            "scientific",
            "cyclic",
            """
            do i = 0, n
              doall j = 0, m        ! loop Pred
                p[i][j] = u[i-1][j] + 0.5 * (u[i-2][j+1] - u[i-3][j-1])
              end
              doall j = 0, m        ! loop Flux
                q[i][j] = p[i][j+1] - p[i][j-1]
              end
              doall j = 0, m        ! loop Corr
                u[i][j] = p[i][j] - 0.5 * q[i][j]
              end
            end
            """,
        ),
        _k(
            "anisotropic-sweep",
            "Anisotropic smoothing with in-step feedback (wavefront only)",
            "image",
            "hyperplane",
            """
            do i = 0, n
              doall j = 0, m        ! loop Grad
                d[i][j] = s[i-1][j+1] - s[i-1][j-1] + w[i-1][j+3]
              end
              doall j = 0, m        ! loop Diffuse
                s[i][j] = d[i][j+1] + 0.5 * d[i][j-1]
              end
              doall j = 0, m        ! loop Weight
                w[i][j] = s[i][j+2] - 0.25 * d[i][j]
              end
            end
            """,
        ),
    ]
