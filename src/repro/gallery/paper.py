"""The paper's figures, transcribed exactly.

Each ``figureN_mldg()`` builds the MLDG of the corresponding figure; the
``figureN_expected_*`` helpers return the retiming functions the paper
reports, so the test suite can assert exact reproduction.

Sources in the paper:

* **Figure 2** -- the running example: nodes A-D, where node C is the loop
  containing both the ``c`` and ``d`` statements.  ``D_L(A,B)={(1,1),(2,1)}``,
  ``D_L(B,C)={(0,-2),(0,1)}`` (a hard-edge), ``D_L(C,D)={(0,-1)}``,
  ``D_L(A,C)={(0,1)}``, ``D_L(D,A)={(2,1)}``, ``D_L(C,C)={(1,0)}``.
* **Figure 6** -- LLOFRA retiming of Figure 2: ``r(A)=r(B)=(0,0)``,
  ``r(C)=(0,-2)``, ``r(D)=(0,-3)``.
* **Figure 12** -- Algorithm 4 retiming of Figure 2: ``r(A)=r(B)=(0,0)``,
  ``r(C)=(-1,0)``, ``r(D)=(-1,-1)``.
* **Figure 8** -- the acyclic example, nodes A-G.
* **Figure 10** -- Algorithm 3 retiming of Figure 8: first coordinates
  ``(0,-1,-2,-2,-1,-2,-2)`` for ``A..G``, second coordinates zero.
* **Figure 14** -- Figure 8 modified with edges ``D->C`` and ``E->B`` and
  redefined vector sets, which forces hyperplane parallelism.
* **Figure 15** -- LLOFRA retiming of Figure 14: ``r(A)=(0,0)``,
  ``r(B)=(0,-4)``, ``r(C)=(0,-6)``, ``r(D)=(0,-3)``, ``r(E)=(0,-5)``,
  ``r(F)=(0,-6)``, ``r(G)=(0,0)``; schedule ``s=(5,1)``, hyperplane
  ``h=(1,-5)``.
"""

from __future__ import annotations

from textwrap import dedent

from repro.graph import MLDG, mldg_from_table
from repro.retiming import Retiming
from repro.vectors import IVec

__all__ = [
    "figure2_mldg",
    "figure2_code",
    "figure2_expected_llofra_retiming",
    "figure2_expected_alg4_retiming",
    "figure8_mldg",
    "figure8_expected_retiming",
    "figure14_mldg",
    "figure14_expected_retiming",
    "figure14_expected_schedule",
    "figure14_expected_hyperplane",
]


def figure2_mldg() -> MLDG:
    """The running example's 2LDG (Figure 2a)."""
    return mldg_from_table(
        {
            ("A", "B"): [(1, 1), (2, 1)],
            ("B", "C"): [(0, -2), (0, 1)],  # hard-edge
            ("C", "D"): [(0, -1)],
            ("A", "C"): [(0, 1)],
            ("D", "A"): [(2, 1)],
            ("C", "C"): [(1, 0)],  # self-dependence of the c/d loop
        },
        nodes=["A", "B", "C", "D"],
    )


def figure2_code() -> str:
    """The running example's source (Figure 2b) in the library's loop DSL.

    Node labels map to loops: A = the ``a`` loop, B = the ``b`` loop, C = the
    loop containing the ``c`` and ``d`` statements, D = the ``e`` loop.
    """
    return dedent(
        """
        do i = 0, n
          doall j = 0, m        ! loop A
            a[i][j] = e[i-2][j-1]
          end
          doall j = 0, m        ! loop B
            b[i][j] = a[i-1][j-1] + a[i-2][j-1]
          end
          doall j = 0, m        ! loop C
            c[i][j] = b[i][j+2] - a[i][j-1] + b[i][j-1]
            d[i][j] = c[i-1][j]
          end
          doall j = 0, m        ! loop D
            e[i][j] = c[i][j+1]
          end
        end
        """
    ).strip()


def figure2_expected_llofra_retiming() -> Retiming:
    """Figure 6's LLOFRA result for the running example."""
    return Retiming(
        {
            "A": IVec(0, 0),
            "B": IVec(0, 0),
            "C": IVec(0, -2),
            "D": IVec(0, -3),
        },
        dim=2,
    )


def figure2_expected_alg4_retiming() -> Retiming:
    """Figure 12's Algorithm-4 result for the running example."""
    return Retiming(
        {
            "A": IVec(0, 0),
            "B": IVec(0, 0),
            "C": IVec(-1, 0),
            "D": IVec(-1, -1),
        },
        dim=2,
    )


def figure8_mldg() -> MLDG:
    """The acyclic example of Section 4.2 (Figure 8)."""
    return mldg_from_table(
        {
            ("A", "B"): [(0, 1)],
            ("B", "C"): [(0, -2), (0, 3)],  # hard-edge
            ("C", "D"): [(1, 3)],
            ("D", "E"): [(2, -2)],
            ("B", "F"): [(0, -2)],
            ("F", "G"): [(1, 2)],
            ("B", "E"): [(1, 2)],
            ("A", "D"): [(0, -3), (0, -1)],  # hard-edge
        },
        nodes=["A", "B", "C", "D", "E", "F", "G"],
    )


def figure8_expected_retiming() -> Retiming:
    """Figure 10's Algorithm-3 result for the acyclic example."""
    return Retiming(
        {
            "A": IVec(0, 0),
            "B": IVec(-1, 0),
            "C": IVec(-2, 0),
            "D": IVec(-2, 0),
            "E": IVec(-1, 0),
            "F": IVec(-2, 0),
            "G": IVec(-2, 0),
        },
        dim=2,
    )


def figure14_mldg() -> MLDG:
    """The cyclic example of Section 4.4 (Figure 14).

    Derived from Figure 8 by adding edges ``D->C`` and ``E->B`` and
    redefining ``D_L(C,D)``, ``D_L(D,E)`` and ``D_L(A,D)`` as the paper
    specifies.
    """
    return mldg_from_table(
        {
            ("A", "B"): [(0, 1)],
            ("B", "C"): [(0, -2), (0, 3)],  # hard-edge
            ("C", "D"): [(0, 3), (0, 5)],  # hard-edge
            ("D", "C"): [(0, -2)],
            ("D", "E"): [(0, -2)],
            ("E", "B"): [(0, 1), (1, 1)],
            ("B", "F"): [(0, -2)],
            ("F", "G"): [(1, 2)],
            ("B", "E"): [(1, 2)],
            ("A", "D"): [(0, -3), (1, 0)],
        },
        nodes=["A", "B", "C", "D", "E", "F", "G"],
    )


def figure14_expected_retiming() -> Retiming:
    """Figure 15's LLOFRA result for the hyperplane example."""
    return Retiming(
        {
            "A": IVec(0, 0),
            "B": IVec(0, -4),
            "C": IVec(0, -6),
            "D": IVec(0, -3),
            "E": IVec(0, -5),
            "F": IVec(0, -6),
            "G": IVec(0, 0),
        },
        dim=2,
    )


def figure14_expected_schedule() -> IVec:
    """Section 4.4: ``s = (5, 1)``."""
    return IVec(5, 1)


def figure14_expected_hyperplane() -> IVec:
    """Section 4.4 / Figure 16: ``h = (1, -5)``."""
    return IVec(1, -5)
