"""The "5 common MLDGs" of the Section-5 experiments.

The paper's experimental section states that the first three of its five
examples are the paper's own Figures 8, 2 and 14; the remainder of the
section is truncated in the available source.  Following DESIGN.md's
substitution rule, Examples 4 and 5 are reconstructed as two kernels that
are "common" in this literature and that exercise the two non-trivial
algorithm paths:

* **Example 4 -- two-dimensional IIR filter section** (cyclic, Algorithm 4
  succeeds): a feed-forward/feed-back cascade of three DOALL loops with
  outermost-carried self-dependencies and a cross-loop feedback cycle.
* **Example 5 -- SOR-style relaxation sweep** (cyclic, Theorem 4.2 fails):
  a residual/update loop pair with bidirectional same-outer-iteration
  coupling, forcing the hyperplane (wavefront) solution of Algorithm 5.

Both are given as MLDGs *and* as runnable loop-DSL programs so the machine
simulator and the semantic-equivalence checker can execute them.
"""

from __future__ import annotations

from dataclasses import dataclass
from textwrap import dedent
from typing import Callable, List, Optional

from repro.graph import MLDG, mldg_from_table
from repro.gallery.paper import figure2_code, figure2_mldg, figure8_mldg, figure14_mldg

__all__ = [
    "iir2d_mldg",
    "iir2d_code",
    "floyd_steinberg_mldg",
    "floyd_steinberg_code",
    "phantom_dependence_code",
    "phantom_dependence_mldg",
    "Section5Example",
    "all_section5_examples",
]


def iir2d_mldg() -> MLDG:
    """Example 4: the 2-D IIR filter section's 2LDG.

    Loops: W (recursive horizontal section), U (feed-forward section),
    Y (output section with feedback to W).
    """
    return mldg_from_table(
        {
            ("W", "W"): [(1, 0), (2, 0)],
            ("W", "U"): [(0, 0)],
            ("U", "U"): [(1, 0)],
            ("U", "Y"): [(0, 1)],
            ("Y", "Y"): [(1, 0)],
            ("Y", "W"): [(1, 2)],
        },
        nodes=["W", "U", "Y"],
    )


def iir2d_code() -> str:
    """Example 4 as a loop-DSL program matching :func:`iir2d_mldg`."""
    return dedent(
        """
        do i = 0, n
          doall j = 0, m        ! loop W
            w[i][j] = x[i][j] + w[i-1][j] - w[i-2][j] + y[i-1][j-2]
          end
          doall j = 0, m        ! loop U
            u[i][j] = w[i][j] + u[i-1][j]
          end
          doall j = 0, m        ! loop Y
            y[i][j] = u[i][j-1] + y[i-1][j]
          end
        end
        """
    ).strip()


def floyd_steinberg_mldg() -> MLDG:
    """Example 5: an SOR/error-diffusion style sweep needing a wavefront.

    Loops R (residual) and U (update) exchange values within the same
    outermost iteration in both directions (``R -> U`` at ``(0,-1)`` and
    ``U -> R`` at ``(0,3)``), so Theorem 4.2's y-phase equalities are
    inconsistent and only hyperplane parallelism is achievable.  The
    additional outermost-carried vector ``(1,-3)`` on ``U -> R`` makes the
    Lemma-4.3 schedule a genuine wavefront (``s = (5, 1)``).
    """
    return mldg_from_table(
        {
            ("R", "U"): [(0, -1)],
            ("U", "R"): [(0, 3), (1, -3)],
        },
        nodes=["R", "U"],
    )


def floyd_steinberg_code() -> Optional[str]:
    """Example 5 has no sequence-executable source form.

    Its MLDG -- like the paper's Figure 14 -- contains a same-outer-iteration
    dependence flowing backwards through the loop sequence (``U -> R`` with
    ``(0, 3)``), so the original loop-sequence program is not executable as
    written; only the retimed, fused form runs.  The executable-code
    experiments therefore synthesise the fused form directly.
    """
    return None


def phantom_dependence_code() -> str:
    """A nest with *syntactic-but-infeasible* dependences (bounded domain).

    The bounds are concrete (``i in [0, 6]``, ``j in [0, 8]``), so the
    Banerjee test can decide dependences exactly.  Two reads look like
    dependences to the syntactic extractor but can never be realised:

    * ``a[i-9][j]`` in loop B -- distance 9 exceeds the outer extent 6, so
      the ``A -> B`` edge keeps only its genuine ``(0, 1)`` vector;
    * ``a[i-8][j]`` in loop C -- distance 8, and the only vector of
      ``A -> C``: the edge-pruning pass removes the edge entirely.

    The showcase program of :mod:`repro.analysis` (docs/ANALYSIS.md); not
    part of the Section-5 experiment table.
    """
    return dedent(
        """
        do i = 0, 6
          doall j = 0, 8        ! loop A
            a[i][j] = x[i][j]
          end
          doall j = 0, 8        ! loop B
            b[i][j] = a[i][j-1] + a[i-9][j]
          end
          doall j = 0, 8        ! loop C
            c[i][j] = b[i-1][j] + a[i-8][j]
          end
        end
        """
    ).strip()


def phantom_dependence_mldg() -> MLDG:
    """The *syntactic* MLDG of :func:`phantom_dependence_code` -- i.e. the
    graph before pruning, with both infeasible vectors still present."""
    return mldg_from_table(
        {
            ("A", "B"): [(0, 1), (9, 0)],
            ("A", "C"): [(8, 0)],
            ("B", "C"): [(1, 0)],
        },
        nodes=["A", "B", "C"],
    )


@dataclass(frozen=True)
class Section5Example:
    """One row of the Section-5 experiment table."""

    key: str
    title: str
    build: Callable[[], MLDG]
    code: Optional[str]
    expected_strategy: str  # repro.fusion.Strategy value
    reconstructed: bool  # True for the rows absent from the truncated source

    def mldg(self) -> MLDG:
        return self.build()


def all_section5_examples() -> List[Section5Example]:
    """The five experiment rows, in the paper's order."""
    return [
        Section5Example(
            key="example1-fig8",
            title="Figure 8 (acyclic 2LDG)",
            build=figure8_mldg,
            code=None,
            expected_strategy="acyclic",
            reconstructed=False,
        ),
        Section5Example(
            key="example2-fig2",
            title="Figure 2 (running example, cyclic DOALL)",
            build=figure2_mldg,
            code=figure2_code(),
            expected_strategy="cyclic",
            reconstructed=False,
        ),
        Section5Example(
            key="example3-fig14",
            title="Figure 14 (cyclic, hyperplane)",
            build=figure14_mldg,
            code=None,
            expected_strategy="hyperplane",
            reconstructed=False,
        ),
        Section5Example(
            key="example4-iir2d",
            title="2-D IIR filter section (reconstructed)",
            build=iir2d_mldg,
            code=iir2d_code(),
            expected_strategy="cyclic",
            reconstructed=True,
        ),
        Section5Example(
            key="example5-sor",
            title="SOR-style relaxation sweep (reconstructed)",
            build=floyd_steinberg_mldg,
            code=floyd_steinberg_code(),
            expected_strategy="hyperplane",
            reconstructed=True,
        ),
    ]
