"""Section 1's prologue claim, measured.

"An initial sequence (the prologue) is created in order to provide the
correct initial data.  Such additional code usually requires a small
computation time when compared to that of the total execution of the
innermost loop and can be considered negligible."

For every DOALL-fusable Section-5 example we measure the fraction of all
statement instances that execute in the boundary rows (prologue +
epilogue) of the fused loop, sweeping the outer trip count.  Expected
shape: the fraction is bounded by ``max_shift / (n+1)`` and vanishes as
``n`` grows -- the claim, quantified.
"""

from repro.fusion import Parallelism, fuse
from repro.gallery import all_section5_examples
from repro.machine import fused_doall_profile

M = 63


def test_prologue_fraction(benchmark, report):
    examples = [
        (ex, fuse(ex.mldg()))
        for ex in all_section5_examples()
    ]
    doall = [(ex, res) for (ex, res) in examples if res.parallelism is Parallelism.DOALL]
    assert doall

    ex0, res0 = doall[0]
    benchmark(fused_doall_profile, ex0.mldg(), res0.retiming, 100, M)

    rows = []
    for (ex, res) in doall:
        g = ex.mldg()
        shifts = [res.retiming[node][0] for node in g.nodes]
        span = max(shifts) - min(shifts)
        for n in (10, 100, 1000):
            full = fused_doall_profile(g, res.retiming, n, M, include_boundary=True)
            core = fused_doall_profile(g, res.retiming, n, M, include_boundary=False)
            boundary = full.total_work - core.total_work
            fraction = boundary / full.total_work
            rows.append(
                (
                    ex.key,
                    n,
                    span,
                    boundary,
                    full.total_work,
                    f"{100 * fraction:.2f}%",
                )
            )
            # bound: boundary rows number at most 2*span, each at most a
            # full row of work
            assert fraction <= 2 * span / (n + 1) + 1e-9
    report.table(
        f"Prologue/epilogue work fraction of the fused loop (m={M})",
        ["example", "n", "shift span", "boundary work", "total work", "fraction"],
        rows,
    )
    # the paper's "negligible" claim: under 2% by n=1000 on every example
    for row in rows:
        if row[1] == 1000:
            assert float(row[5].rstrip("%")) < 2.0, row
