"""Section 1's shift-and-peel inefficiency claim, as a measured crossover.

"[Shift-and-peel] may fuse loops in the presence of fusion-preventing
dependencies.  However, when the number of peeled iterations exceeds the
number of iterations per processor, this method is not efficient."

We sweep the processor count on Figure 8 (both techniques can fuse it) and
measure makespans under the blocked-execution model: shift-and-peel pays
``peel`` serial steps per row and degrades as iterations-per-processor
approach the peel count, while the retiming-fused DOALL loop keeps scaling.
The table pins the threshold the paper states.
"""

from repro.baselines import shift_and_peel
from repro.fusion import fuse
from repro.gallery import figure8_mldg
from repro.machine import profile_fusion
from repro.machine.peel_model import shift_and_peel_time

N, M = 100, 63


def test_peel_crossover(benchmark, report):
    g = figure8_mldg()
    sp = benchmark(shift_and_peel, g)
    assert sp.legal and sp.peel_count == 3

    res = fuse(g)
    retimed = profile_fusion(res, N, M)

    rows = []
    for p in (1, 2, 4, 8, 16, 21, 32, 64):
        t_sp = shift_and_peel_time(g, sp, N, M, p)
        t_rt = retimed.parallel_time(p)
        per_proc = (M + 1) // p
        efficient = sp.efficient_for(M, p)
        rows.append(
            (
                p,
                per_proc,
                sp.peel_count,
                "yes" if efficient else "NO (peel >= iters/proc)",
                t_sp,
                t_rt,
                f"{t_sp / t_rt:.2f}x",
            )
        )
    report.table(
        f"Shift-and-peel vs retiming on Figure 8 (n={N}, m={M}, peel={sp.peel_count})",
        [
            "P",
            "iters/proc",
            "peel",
            "M&A efficient?",
            "T shift-and-peel",
            "T retiming (DOALL)",
            "slowdown",
        ],
        rows,
    )

    # the claim: equal at P=1, and shift-and-peel strictly slower once
    # parallel; the gap must widen as iterations-per-processor shrink
    assert rows[0][4] == rows[0][5]
    slowdowns = [r[4] / r[5] for r in rows[1:]]
    assert all(s > 1.0 for s in slowdowns)
    assert slowdowns[-1] > slowdowns[0]
    # shift-and-peel stops scaling past the threshold (its makespan is flat
    # from P=32 to P=64 while retiming keeps halving), ending at >= 2x
    assert rows[-1][4] == rows[-2][4]
    assert rows[-1][4] / rows[-1][5] >= 2.0
