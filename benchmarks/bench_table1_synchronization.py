"""E5 -- the Section-5 experiment table over the "5 common MLDGs".

The paper's experiment section (truncated in the available source after
identifying Examples 1-3 as Figures 8, 2 and 14) evaluates the method on
five MLDGs; Examples 4-5 are reconstructed per DESIGN.md.  For each example
this regenerates the synchronization-reduction row: loops, dependencies,
algorithm applied, synchronizations per outermost iteration before/after,
totals for n = 100, and the parallelism achieved.  Times the full
``fuse()`` driver across all five graphs.
"""

from repro.fusion import Parallelism, Strategy, fuse
from repro.gallery import all_section5_examples
from repro.machine import profile_fusion, unfused_profile

N, M = 100, 63


def _fuse_all():
    return [fuse(ex.mldg()) for ex in all_section5_examples()]


def test_section5_table(benchmark, report):
    results = benchmark(_fuse_all)

    rows = []
    for ex, res in zip(all_section5_examples(), results):
        g = ex.mldg()
        assert res.strategy is Strategy(ex.expected_strategy), ex.key
        before = unfused_profile(g, N, M)
        after = profile_fusion(res, N, M)
        assert after.total_work == before.total_work  # no work is lost
        parallelism = {
            Parallelism.DOALL: "full (DOALL rows)",
            Parallelism.HYPERPLANE: f"full (wavefront s={res.schedule})",
            Parallelism.SERIAL: "none",
        }[res.parallelism]
        rows.append(
            (
                ex.key + (" *" if ex.reconstructed else ""),
                g.num_nodes,
                g.num_edges,
                res.strategy.value,
                g.num_nodes,  # syncs per outer iteration before = |V|
                before.sync_count,
                after.sync_count,
                f"{before.sync_count / max(after.sync_count, 1):.1f}x",
                parallelism,
            )
        )
    report.table(
        f"Section 5: synchronization reduction on the 5 common MLDGs (n={N}, m={M}; '*' = reconstructed row)",
        [
            "example",
            "|V|",
            "|E|",
            "algorithm",
            "syncs/iter before",
            "total before",
            "total after",
            "reduction",
            "innermost parallelism",
        ],
        rows,
    )

    # Shape assertions.  Every example reaches full parallelism (DOALL or
    # wavefront).  For the DOALL rows, synchronization drops from |V| per
    # outermost iteration to 1 -- the paper's headline reduction.  For the
    # hyperplane rows the unfused loop *sequence* is not even executable
    # (Figure 14 and the SOR sweep carry backward same-iteration
    # dependencies), so the "before" column is nominal and the win is the
    # recovered wavefront parallelism, not the barrier count.
    assert all("full" in row[8] for row in rows)
    for ex, res, row in zip(all_section5_examples(), results, rows):
        if res.parallelism is Parallelism.DOALL:
            assert row[6] < row[5], ex.key
