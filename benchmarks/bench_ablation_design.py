"""Ablations of the design choices the algorithms depend on.

Three load-bearing details, each demonstrated by switching it off:

1. **Hard-edge tightening (Algorithm 4, phase one).**  Hard-edges get bound
   ``delta[0] - 1`` so their mixed-second-coordinate vector sets are forced
   outermost-carried.  Without the ``-1`` the phase-two equalities are
   either inconsistent or -- worse -- "succeed" while leaving a ``(0, k)``
   vector alive, so the "DOALL" loop is silently serial.
2. **Topological body ordering (code generation).**  The paper leaves the
   fused body's statement order implicit; program order breaks as soon as
   a retimed ``(0,0)`` dependence flows backwards through the loop
   sequence.  Executing both orders shows program order computing wrong
   values where the topological order is bit-exact.
3. **Retiming objective: locality vs parallelism.**  LLOFRA (legal fusion
   only) pins same-iteration dependencies at ``(0, k>=0)`` -- immediate
   reuse, best locality, serial rows.  The full-parallelism retimings push
   dependencies outermost-carried -- DOALL rows, but reuse distances grow
   by a factor of the row width.  The reuse-distance model quantifies the
   trade.
"""

from repro.codegen import ArrayStore, apply_fusion, run_fused, run_original
from repro.codegen.fused import FusedProgram, _zero_dependence_order
from repro.constraints import InfeasibleSystemError, ScalarConstraintSystem
from repro.fusion import fuse, legal_fusion_retiming
from repro.gallery import all_section5_examples, figure2_mldg
from repro.graph import mldg_from_table
from repro.loopir import parse_program
from repro.machine import reuse_distances
from repro.retiming import Retiming, is_doall_after_fusion
from repro.retiming.retiming import IVec


def _algorithm4_without_tightening(g):
    """Algorithm 4 with the hard-edge -1 removed (the ablated variant)."""
    phase_one = ScalarConstraintSystem(g.nodes)
    for e in g.edges():
        phase_one.add_leq(e.src, e.dst, e.delta[0])  # no -1 for hard edges
    r_x = phase_one.solve()
    phase_two = ScalarConstraintSystem(g.nodes)
    for e in g.edges():
        if e.is_hard:
            continue
        if e.delta[0] + r_x[e.src] - r_x[e.dst] == 0:
            phase_two.add_eq(e.src, e.dst, e.delta[1])
    r_y = phase_two.solve()
    return Retiming.from_components(r_x, r_y, dim=2)


def test_ablation_hard_edge_tightening(benchmark, report):
    g = figure2_mldg()
    proper = benchmark(fuse, g)
    assert is_doall_after_fusion(proper.retimed)

    rows = [("with -1 (paper)", proper.retiming.describe(), "DOALL: yes")]
    try:
        from repro.graph import is_fusion_legal

        ablated = _algorithm4_without_tightening(g)
        gr = ablated.apply(g)
        doall = is_doall_after_fusion(gr)
        leftover = sorted(
            d for d in gr.all_vectors() if d[0] == 0 and not d.is_zero()
        )
        legal = is_fusion_legal(gr)
        verdict = (
            "DOALL: yes"
            if doall
            else f"{'fusion ILLEGAL' if not legal else 'DOALL: NO'}"
            f" -- surviving same-row vectors {leftover}"
        )
        rows.append(("without -1 (ablated)", ablated.describe(), verdict))
        assert not doall, "ablation unexpectedly still DOALL"
    except InfeasibleSystemError as exc:
        rows.append(("without -1 (ablated)", "infeasible", f"cycle {exc.cycle}"))
    report.table(
        "Ablation 1: Algorithm 4's hard-edge tightening on Figure 2",
        ["variant", "retiming", "outcome"],
        rows,
    )


def test_ablation_body_order(benchmark, report):
    """Program-order bodies corrupt results when a (0,0) dependence flows
    backwards; the topological order is exact."""
    nest = parse_program(
        "do i = 0, n\n"
        "  A: doall j = 0, m\n    a[i][j] = b[i-1][j] + x[i][j]\n  end\n"
        "  B: doall j = 0, m\n    b[i][j] = x[i][j-1]\n  end\n"
        "end"
    )
    # advancing A by one outer iteration turns the B -> A edge into (0,0):
    # inside the fused body, B's statement must now run *before* A's
    retiming = Retiming({"A": IVec(1, 0)}, dim=2)
    fp = benchmark(apply_fusion, nest, retiming)
    assert tuple(node.label for node in fp.body) == ("B", "A")

    n, m = 7, 6
    base = ArrayStore.for_program(nest, n, m, seed=11)
    ref = run_original(nest, n, m, store=base.copy())

    good = run_fused(fp, n, m, store=base.copy(), mode="serial")

    program_order_fp = FusedProgram(
        original=fp.original,
        retiming=fp.retiming,
        body=tuple(sorted(fp.body, key=lambda nd: nest.labels.index(nd.label))),
        mldg=fp.mldg,
        retimed_mldg=fp.retimed_mldg,
    )
    bad = run_fused(program_order_fp, n, m, store=base.copy(), mode="serial")

    rows = [
        ("topological (this library)", "B, A", "bit-identical" if ref.equal(good) else "WRONG"),
        ("program order (naive)", "A, B", "bit-identical" if ref.equal(bad) else
         f"WRONG (max |diff| = {ref.max_abs_difference(bad):.3g})"),
    ]
    report.table(
        "Ablation 2: fused-body statement order under a backward (0,0) dependence",
        ["body order", "sequence", "result vs original"],
        rows,
    )
    assert ref.equal(good)
    assert not ref.equal(bad)


def _safe_body_order(g, retiming):
    """Topological body order, or program order when none exists (the
    Figure-14 deadlock case; the distance model is positional anyway)."""
    from repro.codegen.fused import DeadlockError

    try:
        return _zero_dependence_order(retiming.apply(g), list(g.nodes))
    except DeadlockError:
        return list(g.nodes)


def test_ablation_locality_vs_parallelism(benchmark, report):
    m = 63
    rows = []
    example = all_section5_examples()[0]
    benchmark(reuse_distances, example.mldg(), m)
    for ex in all_section5_examples():
        g = ex.mldg()
        r_legal = legal_fusion_retiming(g)
        r_par = fuse(g).retiming
        unfused = reuse_distances(g, m)
        legal = reuse_distances(
            g, m, retiming=r_legal, body_order=_safe_body_order(g, r_legal)
        )
        par = reuse_distances(
            g, m, retiming=r_par, body_order=_safe_body_order(g, r_par)
        )
        rows.append(
            (
                ex.key,
                f"{unfused.mean_distance():.0f} / {unfused.hit_ratio(16):.2f}",
                f"{legal.mean_distance():.0f} / {legal.hit_ratio(16):.2f}",
                f"{par.mean_distance():.0f} / {par.hit_ratio(16):.2f}",
            )
        )
        # the locality claim: legal fusion never hurts small-capacity hits
        assert legal.hit_ratio(16) >= unfused.hit_ratio(16)
    report.table(
        "Ablation 3: mean reuse distance / hit-ratio@16 by retiming objective (m=63)",
        ["example", "unfused", "LLOFRA (locality)", "parallel (DOALL/wavefront)"],
        rows,
    )
