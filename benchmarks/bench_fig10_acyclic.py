"""E3 -- Figures 8-10: Algorithm 3 on the acyclic example.

Regenerates: the Figure-10 retiming and retimed weights, and Section 4.2's
synchronization accounting -- ``7 * n`` barriers before fusion versus
``n - 2`` after -- across a sweep of outermost trip counts.  Times
Algorithm 3.
"""

from repro.fusion import acyclic_parallel_retiming, fuse
from repro.gallery import figure8_mldg
from repro.gallery.paper import figure8_expected_retiming
from repro.machine import fused_doall_profile, unfused_profile
from repro.retiming import is_doall_after_fusion
from repro.vectors import IVec

EXPECTED_WEIGHTS = {
    ("A", "B"): IVec(1, 1),
    ("B", "C"): IVec(1, -2),
    ("C", "D"): IVec(1, 3),
    ("D", "E"): IVec(1, -2),
    ("B", "F"): IVec(1, -2),
    ("F", "G"): IVec(1, 2),
    ("B", "E"): IVec(1, 2),
    ("A", "D"): IVec(2, -3),
}


def test_figure10_reproduction(benchmark, report):
    g = figure8_mldg()

    retiming = benchmark(acyclic_parallel_retiming, g)

    expected = figure8_expected_retiming()
    assert retiming == expected, "retiming differs from Figure 10"
    gr = retiming.apply(g)
    assert is_doall_after_fusion(gr)
    for key, want in EXPECTED_WEIGHTS.items():
        assert gr.delta(*key) == want

    report.table(
        "Figure 10: Algorithm-3 retiming and retimed weights",
        ["item", "paper", "measured", "match"],
        [
            *((f"r({n})", str(expected[n]), str(retiming[n]), "yes") for n in g.nodes),
            *(
                (f"delta_Lr({s}->{d})", str(w), str(gr.delta(s, d)), "yes")
                for (s, d), w in EXPECTED_WEIGHTS.items()
            ),
        ],
    )


def test_section42_synchronization_sweep(benchmark, report):
    """'7*n synchronizations' -> '(n-2) synchronizations' (Section 4.2)."""
    g = figure8_mldg()
    res = benchmark(fuse, g)
    m = 63
    rows = []
    for n in (10, 50, 100, 500, 1000):
        before = unfused_profile(g, n, m).sync_count
        core = fused_doall_profile(
            g, res.retiming, n, m, include_boundary=False
        ).sync_count
        full = fused_doall_profile(
            g, res.retiming, n, m, include_boundary=True
        ).sync_count
        assert core == n - 2, "paper's core count"
        rows.append((n, 7 * n, before, n - 2, core, full, f"{before / core:.1f}x"))
    report.table(
        "Section 4.2: synchronization counts for Figure 8 (m = 63)",
        [
            "n",
            "paper 7n",
            "measured unfused",
            "paper n-2",
            "measured fused (core)",
            "fused (with boundary)",
            "reduction",
        ],
        rows,
    )
