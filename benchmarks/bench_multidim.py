"""Beyond-paper benchmark: the n-dimensional generalisations.

Times the generalised Algorithm 4 (`multidim_parallel_retiming`) on random
3-D MLDGs and reports the outcome mix (parallelised vs provably
impossible) plus the generalised Lemma-4.3 schedule construction, with the
full-parallelism invariant asserted on every success.
"""

import random

from repro.fusion import (
    NoParallelRetimingError,
    multidim_parallel_retiming,
    multidim_schedule_vector,
)
from repro.graph import MLDG, is_fusion_legal
from repro.vectors import IVec


def _random_3d(seed: int, nodes: int = 8) -> MLDG:
    rng = random.Random(seed)
    g = MLDG(dim=3)
    names = [f"L{k}" for k in range(nodes)]
    for n in names:
        g.add_node(n)
    for a in range(nodes):
        for b in range(nodes):
            if a == b or rng.random() > 0.35:
                continue
            lo = 0 if a < b else 1
            vecs = [
                IVec(rng.randint(lo, 2), rng.randint(-3, 3), rng.randint(-3, 3))
                for _ in range(rng.randint(1, 2))
            ]
            g.add_dependence(names[a], names[b], *vecs)
    return g


def test_multidim_outcomes(benchmark, report):
    graphs = [_random_3d(seed) for seed in range(40)]

    def sweep():
        ok, impossible = 0, 0
        for g in graphs:
            try:
                multidim_parallel_retiming(g)
                ok += 1
            except NoParallelRetimingError:
                impossible += 1
        return ok, impossible

    ok, impossible = benchmark(sweep)

    # verify the invariant on every success (outside the timed region)
    verified = 0
    for g in graphs:
        try:
            r = multidim_parallel_retiming(g)
        except NoParallelRetimingError:
            continue
        gr = r.apply(g)
        assert is_fusion_legal(gr)
        for d in gr.all_vectors():
            assert d[0] >= 1 or d.is_zero()
        verified += 1
    assert verified == ok

    report.table(
        "n-D generalisation of Algorithm 4 on random 3-D MLDGs (8 nodes each)",
        ["outcome", "count", "note"],
        [
            ("full inner parallelism", ok, "every vector carried or zero (verified)"),
            ("provably impossible", impossible, "negative-cycle certificate returned"),
        ],
    )


def test_multidim_schedule_construction(benchmark):
    rng = random.Random(5)
    batches = []
    for _ in range(50):
        vecs = []
        while len(vecs) < 8:
            v = IVec(rng.randint(0, 3), rng.randint(-6, 6), rng.randint(-6, 6))
            if tuple(v) >= (0, 0, 0) and not v.is_zero():
                vecs.append(v)
        batches.append(vecs)

    def run():
        for vecs in batches:
            s = multidim_schedule_vector(vecs)
            assert all(s.dot(d) > 0 for d in vecs)

    benchmark(run)
