"""The performance trajectory: backends, memo caches and solvers over time.

Not a paper experiment -- this archives the library's own measured
performance so regressions are visible commit to commit.  Records flow
through the ``perf_record`` fixture into ``BENCH_perf.json`` at the
repository root (schema ``repro-bench-perf/1``): execution backends at full
size (interpreter vs compiled vs parallel DOALL and wavefront), cold-vs-hot
fusion memoization, the persistent store's cold/warm compile latency
(gallery-twice acceptance row included), and the SLF worklist against the
round-based Bellman-Ford reference.

The full-size measurements are marked ``perf`` (deselect with
``-m 'not perf'``); a small smoke tier runs by default so the harness
itself cannot rot unnoticed.
"""

import pytest

from repro.perf.bench import (
    bench_backend_sweep,
    bench_backends,
    bench_fusion_cache,
    bench_plan,
    bench_solvers,
    bench_store,
    bench_store_gallery,
    render_records_text,
    records_to_json,
)

FULL_N = FULL_M = 256
SMOKE_N = SMOKE_M = 24


def test_smoke_backends(report, perf_record):
    """Fast tier: the whole harness end to end at a tiny size."""
    records = bench_backends(
        "fig2",
        n=SMOKE_N,
        m=SMOKE_M,
        jobs=(1, 2),
        repeats=2,
        backends=("interp", "compiled", "numpy", "parallel"),
    )
    assert {r.backend for r in records} >= {"interp", "compiled", "numpy"}
    perf_record(records)


def test_smoke_solver_metrics_archived(report, perf_record):
    """Fast tier: BENCH_perf.json carries the observability counters.

    The ``metrics`` key is additive to schema ``repro-bench-perf/1``: the
    solver work done while benchmarking (relaxation rounds, worklist pops)
    is archived alongside the timings, so a perf regression can be checked
    against "did the algorithm do more work" without re-running.
    """
    records = bench_solvers(chain=30, repeats=1)
    perf_record(records)
    doc = records_to_json(records)
    assert doc["schema"] == "repro-bench-perf/1"
    counters = doc["metrics"]["counters"]
    assert counters.get("solver.bellman_ford.calls", 0) > 0
    assert counters.get("solver.bellman_ford.rounds", 0) > 0
    assert counters.get("solver.bellman_ford.pops", 0) > 0


def test_smoke_store_gallery_warm(report, perf_record):
    """Fast tier + acceptance row: the gallery twice through one store.

    The warm pass (fresh L1, same store file) must be served from disk at
    a >= 90% L2 hit ratio and reproduce the cold pass bit for bit; the
    record lands in ``BENCH_perf.json`` as the archived evidence.
    """
    records = bench_store_gallery()
    perf_record(records)
    warm = next(r for r in records if r.backend == "warm-pass")
    assert warm.extra["bitIdentical"] is True
    assert warm.extra["store"]["hitRatio"] >= 0.90
    report.text(render_records_text(records_to_json(records)))


def test_smoke_plan_auto_vs_static(report, perf_record):
    """Fast tier: the execution planner against the static backends.

    After the static configs feed the profile tier, ``auto`` must resolve
    to a concrete backend, stay bit-identical (bench_plan verifies before
    timing), and not land on the measured-worst config -- timings at smoke
    size are noisy, so the archived bar is generous (auto within 2x of
    best-static, and clearly better than a worst-static that is ~5x off).
    """
    records = bench_plan("fig2", sizes=((SMOKE_N, SMOKE_M),), jobs=(1, 2), repeats=2)
    perf_record(records)
    report.text(render_records_text(records_to_json(records)))
    auto = next(r for r in records if r.backend == "auto")
    assert auto.extra["bitIdentical"] is True
    assert auto.extra["chosen"]["backend"] in ("interp", "compiled", "numpy", "parallel")
    assert auto.extra["vsBestStatic"] <= 2.0
    assert auto.extra["vsWorstStatic"] <= 1.0


@pytest.mark.perf
def test_perf_plan_auto_tracks_best_static(report, perf_record):
    """The acceptance row: on warm profile data the planner's pick for
    fig2 at smoke and full size is the measured-fastest config, and the
    planned execution's median is never worse than the worst static
    backend (it should be within noise of the best)."""
    records = bench_plan(
        "fig2", sizes=((SMOKE_N, SMOKE_M), (FULL_N, FULL_M)), jobs=(1, 2), repeats=3
    )
    perf_record(records)
    report.text(render_records_text(records_to_json(records)))
    for n in (SMOKE_N, FULL_N):
        auto = next(r for r in records if r.backend == "auto" and r.n == n)
        chosen = auto.extra["chosen"]
        best = auto.extra["bestStatic"]
        # the pick is profile-driven and lands on (or within noise of)
        # the measured winner; interp is ~40-400x off at these sizes, so
        # a wrong pick fails the ratio bars immediately
        assert chosen["source"] in ("profile", "model")
        assert auto.extra["vsBestStatic"] <= 1.5
        assert auto.extra["vsWorstStatic"] <= 0.5
        assert chosen["backend"] != "interp"
        assert best["backend"] != "interp"


@pytest.mark.perf
def test_perf_store_cold_vs_warm(report, perf_record):
    """Persistent-store latency: solver vs write-through vs disk-served."""
    records = bench_store("fig2", repeats=5)
    perf_record(records)
    report.text(render_records_text(records_to_json(records)))
    warm = next(r for r in records if r.backend == "store-warm")
    # every warm run must actually come off the disk tier
    assert warm.extra["store"]["hitRatio"] >= 0.90


@pytest.mark.perf
def test_perf_doall_backends(report, perf_record):
    """DOALL example (fig2) at full size across every backend."""
    records = bench_backends(
        "fig2",
        n=FULL_N,
        m=FULL_M,
        jobs=(1, 2, 4),
        backends=("interp", "compiled", "numpy", "parallel"),
    )
    perf_record(records)
    doc = records_to_json(records)
    report.text(render_records_text(doc))
    interp = next(r for r in records if r.backend == "interp")
    for r in records:
        if r.jobs == 4 and r.backend.startswith("parallel"):
            # the headline acceptance bar: parallel DOALL at jobs=4 beats the
            # serial interpreter by >= 2x (bit-identity is verified by
            # bench_backends before timing)
            assert interp.median_s / r.median_s >= 2.0
    assert interp.median_s > 0


@pytest.mark.perf
def test_perf_wavefront_backend(report, perf_record):
    """Hyperplane example (anisotropic-sweep) with the tiled wavefront."""
    records = bench_backends(
        "anisotropic-sweep",
        n=96,
        m=96,
        jobs=(1, 2, 4),
        backends=("interp", "parallel"),
    )
    perf_record(records)
    report.text(render_records_text(records_to_json(records)))


@pytest.mark.perf
def test_perf_numpy_sweep(report, perf_record):
    """The numpy whole-array backend across sizes, both regimes.

    ``jacobi-pair`` is DOALL-heavy (every stage whole-array) -- the numpy
    backend's headline regime, expected well over the compiled per-row
    kernel at 256x256.  ``fig2`` is the opposite pole: its recurrence
    admits at most U=2 rows per array op, so the recorded speedup over
    compiled is the dependence-bound ceiling (~1x), archived on purpose
    as the honest contrast (see docs/PERFORMANCE.md).
    """
    records = bench_backend_sweep(
        "jacobi-pair",
        sizes=[(64, 64), (FULL_N, FULL_M)],
        backends=("interp", "compiled", "numpy"),
    )
    records += bench_backend_sweep(
        "fig2",
        sizes=[(FULL_N, FULL_M)],
        backends=("interp", "compiled", "numpy"),
    )
    perf_record(records)
    report.text(render_records_text(records_to_json(records)))
    headline = next(
        r
        for r in records
        if r.backend == "numpy" and r.name.startswith("jacobi-pair")
        and r.n == FULL_N
    )
    # regression bar, deliberately below the ~6x a quiet machine shows
    assert headline.extra["speedupVsCompiled"] >= 2.0
    assert headline.extra["plan"]["scalar"] == 0


@pytest.mark.perf
def test_perf_fusion_cache(report, perf_record):
    records = bench_fusion_cache("fig2")
    perf_record(records)
    hot = next(r for r in records if r.backend == "memo-cache")
    assert hot.extra["cache"]["hits"] > 0


@pytest.mark.perf
def test_perf_solvers(report, perf_record):
    records = bench_solvers(chain=400)
    perf_record(records)
    slf = next(r for r in records if r.backend == "slf")
    rounds = next(r for r in records if r.backend == "rounds")
    # the worklist must beat the O(V*E) worst case by a wide margin
    assert rounds.median_s / slf.median_s >= 2.0
