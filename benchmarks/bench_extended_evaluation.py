"""Extended evaluation: the Section-5 methodology on six more kernels.

Beyond the paper's five MLDGs, this applies the full pipeline (extract ->
fuse -> codegen -> execute -> verify) to the extended workload gallery --
image-processing, DSP and scientific kernels with two to five loops --
and reports the same synchronization/parallelism columns as the Section-5
table plus a bit-exactness verdict for every kernel.  Times the complete
pipeline across the whole set.
"""

from repro.fusion import Parallelism, Strategy, fuse
from repro.gallery.extended import extended_kernels
from repro.machine import profile_fusion, unfused_profile
from repro.pipeline import fuse_and_verify

N, M = 100, 63


def _run_all():
    return [fuse(k.mldg()) for k in extended_kernels()]


def test_extended_table(benchmark, report):
    results = benchmark(_run_all)

    rows = []
    for kernel, res in zip(extended_kernels(), results):
        g = kernel.mldg()
        assert res.strategy is Strategy(kernel.expected_strategy), kernel.key

        before = unfused_profile(g, N, M)
        after = profile_fusion(res, N, M)

        # end-to-end: generated code must compute the original's results
        verified = fuse_and_verify(kernel.code, sizes=[(9, 8)], seeds=[0])
        assert verified.fusion.strategy is res.strategy

        parallelism = {
            Parallelism.DOALL: "DOALL rows",
            Parallelism.HYPERPLANE: f"wavefront s={res.schedule}",
            Parallelism.SERIAL: "serial",
        }[res.parallelism]
        rows.append(
            (
                kernel.key,
                kernel.domain,
                g.num_nodes,
                g.num_edges,
                res.strategy.value,
                before.sync_count,
                after.sync_count,
                parallelism,
                "bit-identical",
            )
        )
    report.table(
        f"Extended evaluation (n={N}, m={M}): six kernels beyond the paper's set",
        [
            "kernel",
            "domain",
            "|V|",
            "|E|",
            "algorithm",
            "syncs before",
            "syncs after",
            "parallelism",
            "execution",
        ],
        rows,
    )
    # all DOALL results cut synchronisation; all kernels fully parallel
    for (key, _dom, nv, _ne, strat, sb, sa, par, _ver) in rows:
        if "DOALL" in par:
            assert sa < sb, key
