"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
evaluation (see DESIGN.md's per-experiment index) and also times its core
algorithm with pytest-benchmark.  The reproduction tables are printed
through the ``report`` fixture so they appear in the terminal (and hence in
``bench_output.txt``) even under pytest's output capture, and are archived
under ``results/``.

Performance-trajectory records (``repro.perf.bench.BenchRecord``) collected
through the ``perf_record`` fixture are additionally archived as
machine-readable ``BENCH_perf.json`` at the repository root when the
session ends -- per-benchmark medians with spread, backend, iteration-space
size and the memo/kernel cache statistics, in the same schema
``repro-fuse bench --format json`` prints.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Sequence

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
PERF_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_PERF_RECORDS: List = []


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [f"\n== {title} ==", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


class Reporter:
    """Prints reproduction tables to the live terminal and archives them."""

    def __init__(self, capsys: pytest.CaptureFixture, slug: str) -> None:
        self._capsys = capsys
        self._slug = slug
        RESULTS_DIR.mkdir(exist_ok=True)

    def table(self, title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
        text = format_table(title, headers, list(rows))
        self.text(text)

    def text(self, text: str) -> None:
        with self._capsys.disabled():
            print(text)
        path = RESULTS_DIR / f"{self._slug}.txt"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(text + "\n")


@pytest.fixture
def report(capsys: pytest.CaptureFixture, request: pytest.FixtureRequest) -> Reporter:
    slug = pathlib.Path(request.node.fspath).stem
    return Reporter(capsys, slug)


@pytest.fixture(scope="session", autouse=True)
def _clear_results() -> None:
    """Start each benchmark session with a clean results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for f in RESULTS_DIR.glob("bench_*.txt"):
        f.unlink()


@pytest.fixture
def perf_record():
    """Collects :class:`repro.perf.bench.BenchRecord` lists for the archive.

    Call it with an iterable of records; everything collected over the
    session lands in ``BENCH_perf.json`` at the repository root.
    """

    def add(records) -> None:
        _PERF_RECORDS.extend(records)

    return add


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    if not _PERF_RECORDS:
        return
    from repro.perf.bench import records_to_json, write_json

    write_json(records_to_json(_PERF_RECORDS), str(PERF_JSON_PATH))
