"""E2 -- Figures 11-13: Algorithm 4 on the running example.

Regenerates: the two-phase constraint graphs (Figure 11), the retiming of
Figure 12 (``r(C)=(-1,0), r(D)=(-1,-1)``), the fused code of Figure 12b and
the DOALL iteration space of Figure 13 (contrasted with Figure 7's
serialised one).  Times Algorithm 4 (two scalar Bellman-Ford runs).
"""

from repro.codegen import apply_fusion, emit_fused_program
from repro.fusion import cyclic_parallel_retiming, legal_fusion_retiming
from repro.gallery import figure2_mldg
from repro.gallery.paper import figure2_code, figure2_expected_alg4_retiming
from repro.loopir import parse_program
from repro.retiming import is_doall_after_fusion
from repro.verify import runtime_doall_violations


def test_figure12_reproduction(benchmark, report):
    g = figure2_mldg()

    retiming = benchmark(cyclic_parallel_retiming, g)

    expected = figure2_expected_alg4_retiming()
    assert retiming == expected, "retiming differs from Figure 12"
    gr = retiming.apply(g)
    assert is_doall_after_fusion(gr), "Figure 12's fusion must be DOALL"

    report.table(
        "Figure 12: Algorithm-4 retiming",
        ["node", "paper r", "measured r", "match"],
        [(n, str(expected[n]), str(retiming[n]), "yes") for n in g.nodes],
    )

    nest = parse_program(figure2_code())
    fused = apply_fusion(nest, retiming, mldg=g)
    report.text("\n== Figure 12b: generated fused program ==\n" + emit_fused_program(fused))


def test_figure7_vs_figure13_iteration_spaces(benchmark, report):
    """Row dependencies before (Fig. 7, LLOFRA only) and after (Fig. 13)."""
    g = figure2_mldg()
    nest = benchmark(parse_program, figure2_code())

    rows = []
    for label, retiming in (
        ("Figure 7 (LLOFRA only)", legal_fusion_retiming(g)),
        ("Figure 13 (Algorithm 4)", cyclic_parallel_retiming(g)),
    ):
        fused = apply_fusion(nest, retiming, mldg=g)
        violations = runtime_doall_violations(fused, 3, 3, limit=1000)
        rows.append(
            (
                label,
                "serial rows" if violations else "fully parallel rows",
                len(violations),
            )
        )
    report.table(
        "Figures 7 vs 13: intra-row dependencies on a 4x4 iteration space",
        ["transformation", "innermost loop", "same-row dependence pairs"],
        rows,
    )
    assert rows[0][2] > 0 and rows[1][2] == 0

    from repro.viz import format_iteration_space

    report.text(
        "\n== Figure 7 rendering (LLOFRA only) ==\n"
        + format_iteration_space(legal_fusion_retiming(g).apply(g))
    )
    report.text(
        "\n== Figure 13 rendering (Algorithm 4) ==\n"
        + format_iteration_space(cyclic_parallel_retiming(g).apply(g))
    )
