"""E9 -- generated fused code computes the original program's results.

The paper presents its transformed programs (Figures 3b, 6b, 12b) without
executing them; this experiment closes that loop.  For every example with a
source program -- Figure 2, the 2-D IIR section, and synthesised programs
for Figure 8 and random graphs -- the fused, retimed code is executed in
its claimed parallel order (randomised within phases) and compared
bit-for-bit against the original loop sequence.  Times the full
parse -> extract -> fuse -> codegen -> execute pipeline.
"""

from repro.codegen import apply_fusion
from repro.depend import extract_mldg
from repro.fusion import fuse
from repro.gallery import figure8_mldg
from repro.gallery.common import iir2d_code
from repro.gallery.paper import figure2_code
from repro.graph import random_legal_mldg
from repro.loopir import parse_program, program_from_mldg
from repro.verify import verify_fusion_result


def _programs():
    yield "figure2", parse_program(figure2_code())
    yield "iir2d", parse_program(iir2d_code())
    yield "figure8 (synthesised)", program_from_mldg(figure8_mldg())
    for seed in (3, 4):
        yield f"random graph seed={seed}", program_from_mldg(
            random_legal_mldg(6, seed=seed)
        )


def test_equivalence_table(benchmark, report):
    benchmark(extract_mldg, parse_program(figure2_code()))
    rows = []
    for name, nest in _programs():
        res = fuse(extract_mldg(nest))
        reports = verify_fusion_result(nest, res, sizes=[(9, 8), (12, 5)], seeds=[0, 1])
        ok = all(r.equivalent for r in reports)
        modes = ", ".join(sorted({r.mode for r in reports}))
        rows.append(
            (
                name,
                res.strategy.value,
                len(reports),
                modes,
                "bit-identical" if ok else "MISMATCH",
            )
        )
        assert ok, name
    report.table(
        "Generated-code equivalence (exact array comparison, randomised phase order)",
        ["program", "algorithm", "executions", "modes", "result"],
        rows,
    )


def test_pipeline_end_to_end(benchmark):
    source = figure2_code()

    def pipeline():
        nest = parse_program(source)
        g = extract_mldg(nest)
        res = fuse(g)
        fused = apply_fusion(nest, res.retiming, mldg=g)
        from repro.verify import check_equivalence

        rep = check_equivalence(nest, fused, n=8, m=8, mode="doall")
        assert rep.equivalent
        return rep

    benchmark(pipeline)
