"""E6 -- the polynomial-time claim (paper title, Sections 3-4).

All four algorithms reduce to O(|V| * |E|) Bellman-Ford runs.  This sweep
times the full ``fuse()`` driver on random legal MLDGs of growing size and
checks the empirical growth exponent on a log-log fit: comfortably
polynomial (well under cubic in |V| for these dense-ish graphs), as the
title promises.
"""

import math
import time

from repro.fusion import fuse, legal_fusion_retiming
from repro.graph import random_legal_mldg

SIZES = (4, 8, 16, 32, 64, 128)


def _median_runtime(g, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fuse(g)
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2]


def test_runtime_scaling(benchmark, report):
    benchmark(fuse, random_legal_mldg(16, seed=16))
    rows = []
    points = []
    for size in SIZES:
        g = random_legal_mldg(size, seed=size)
        runtime = _median_runtime(g)
        rows.append((size, g.num_edges, f"{runtime * 1e3:.2f} ms"))
        points.append((math.log(size), math.log(runtime)))

    # least-squares slope of log(time) vs log(|V|)
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / sum(
        (x - mean_x) ** 2 for x, _ in points
    )

    report.table(
        "Polynomial-time claim: fuse() runtime on random legal MLDGs",
        ["|V|", "|E|", "median runtime"],
        rows,
    )
    report.text(f"empirical growth exponent (log-log slope in |V|): {slope:.2f}")
    # |E| grows ~quadratically in |V| here, and Bellman-Ford is O(|V||E|),
    # so anything clearly below |V|^4 is consistent with the claim; in
    # practice the early-exit Bellman-Ford lands far lower.
    assert slope < 3.5, f"super-polynomial-looking growth: slope {slope:.2f}"


def test_fuse_medium_graph(benchmark):
    g = random_legal_mldg(48, seed=7)
    benchmark(fuse, g)


def test_llofra_large_graph(benchmark):
    g = random_legal_mldg(128, seed=11)
    benchmark(legal_fusion_retiming, g)
