"""E7 -- simulated multiprocessor speedup before vs after fusion.

The paper argues fusion wins by eliminating synchronization (Section 1);
this experiment makes that concrete on the abstract barrier machine
(DESIGN.md substitution S9): makespan and speedup for P in {1..16} with a
fixed per-barrier cost, before and after fusion, for the Section-5
examples.  Expected shape: equal compute work, with the fused schedule
pulling ahead as P (and hence the relative weight of barriers) grows.
"""

from repro.fusion import fuse
from repro.gallery import all_section5_examples
from repro.machine import profile_fusion, unfused_profile

N, M = 100, 63
SYNC_COST = 25  # work-units per barrier
PROCS = (1, 2, 4, 8, 16)


def test_speedup_table(benchmark, report):
    from repro.fusion import Parallelism

    benchmark(unfused_profile, all_section5_examples()[0].mldg(), N, M)
    rows = []
    for ex in all_section5_examples():
        g = ex.mldg()
        res = fuse(g)
        before = unfused_profile(g, N, M)
        after = profile_fusion(res, N, M)
        wavefront = res.parallelism is Parallelism.HYPERPLANE
        for p in PROCS:
            tb = before.parallel_time(p, sync_cost=SYNC_COST)
            ta = after.parallel_time(p, sync_cost=SYNC_COST)
            rows.append(
                (
                    ex.key + (" (wavefront)" if wavefront else ""),
                    p,
                    tb,
                    ta,
                    f"{tb / ta:.2f}x",
                    f"{before.total_work / tb:.2f}",
                    f"{after.total_work / ta:.2f}",
                )
            )
        # Headline claim, for the DOALL cases: fused is strictly faster at
        # scale (same work, far fewer barriers).  The wavefront cases have
        # no executable unfused baseline (backward same-iteration
        # dependencies), so their "unfused" column is nominal only.
        if not wavefront:
            tb16 = before.parallel_time(16, sync_cost=SYNC_COST)
            ta16 = after.parallel_time(16, sync_cost=SYNC_COST)
            assert ta16 < tb16, ex.key

    report.table(
        f"Simulated speedup, barrier cost {SYNC_COST} (n={N}, m={M})",
        [
            "example",
            "P",
            "T unfused",
            "T fused",
            "fused vs unfused",
            "speedup unfused",
            "speedup fused",
        ],
        rows,
    )


def test_simulation_throughput(benchmark):
    """Time one full profile comparison (the simulator itself is fast)."""
    ex = all_section5_examples()[2]  # figure 14, the hyperplane case
    g = ex.mldg()
    res = fuse(g)

    def run():
        before = unfused_profile(g, N, M)
        after = profile_fusion(res, N, M)
        return before.parallel_time(8, sync_cost=SYNC_COST), after.parallel_time(
            8, sync_cost=SYNC_COST
        )

    benchmark(run)
