"""E8 -- comparison with prior fusion techniques (Section 1's related work).

For each of the five Section-5 MLDGs, what each baseline achieves versus
the paper's method: can it fuse at all, how many loops (= barriers per
outermost iteration) remain, what parallelism survives, and at what cost
(shift-and-peel's peeled iterations).  Expected shape, matching the paper's
qualitative claims: naive fusion fails wherever fusion-preventing
dependencies exist; Kennedy-McKinley fuses partially (it "does not address
... fusion-preventing dependencies"); shift-and-peel fuses the
sequence-executable cases at the price of peeling and fails on cyclic
same-iteration coupling; the retiming method fuses everything with full
parallelism.
"""

from repro.baselines import (
    direct_fusion,
    loop_distribution,
    shift_and_peel,
    transform_search,
    typed_fusion,
)
from repro.fusion import Parallelism, fuse
from repro.gallery import all_section5_examples


def _describe_all(g):
    """One comparison row set for one MLDG."""
    out = {}
    d = direct_fusion(g)
    out["naive fusion"] = (
        ("1 loop", "DOALL" if d.doall else "serial") if d.legal else ("fails", "-")
    )
    try:
        t = typed_fusion(g)
        groups = t.syncs_per_outer_iteration
        par = "all DOALL" if t.all_parallel else "some serial"
        out["Kennedy-McKinley"] = (f"{groups} loops", par)
    except ValueError:
        out["Kennedy-McKinley"] = ("fails", "-")
    sp = shift_and_peel(g)
    out["shift-and-peel"] = (
        ("1 loop", f"blocked, peel={sp.peel_count}") if sp.legal else ("fails", "-")
    )
    dist = loop_distribution(g)
    out["distribution (no fusion)"] = (
        f"{dist.syncs_per_outer_iteration} loops",
        "all DOALL",
    )
    ts = transform_search(g)
    if not ts.fusable:
        out["naive fusion + unimodular"] = ("fails", "-")
    elif ts.transform is None:
        out["naive fusion + unimodular"] = ("1 loop", "no transform found")
    else:
        out["naive fusion + unimodular"] = ("1 loop", f"DOALL via T={ts.transform}")
    res = fuse(g)
    par = (
        "DOALL"
        if res.parallelism is Parallelism.DOALL
        else f"wavefront s={res.schedule}"
    )
    out["this paper (retiming)"] = ("1 loop", par)
    return out, res


def test_baseline_comparison_table(benchmark, report):
    from repro.gallery import figure8_mldg

    benchmark(_describe_all, figure8_mldg())
    rows = []
    for ex in all_section5_examples():
        g = ex.mldg()
        comparison, res = _describe_all(g)
        for technique, (loops, parallelism) in comparison.items():
            rows.append((ex.key, technique, loops, parallelism))

        # qualitative claim from Section 1: on every example, naive fusion
        # either is illegal or sacrifices the innermost parallelism ...
        naive = comparison["naive fusion"]
        assert naive[0] == "fails" or naive[1] == "serial", ex.key
        # ... while the retiming method always gets one fully parallel loop
        assert comparison["this paper (retiming)"][0] == "1 loop"
    report.table(
        "Baseline comparison on the Section-5 examples",
        ["example", "technique", "fused into", "innermost parallelism"],
        rows,
    )


def test_baselines_are_cheap(benchmark):
    """Time the whole baseline suite on Figure 8."""
    from repro.gallery import figure8_mldg

    g = figure8_mldg()

    def run():
        direct_fusion(g)
        typed_fusion(g)
        shift_and_peel(g)
        loop_distribution(g)

    benchmark(run)
