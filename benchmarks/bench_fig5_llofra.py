"""E1 -- Figures 5 and 6: LLOFRA on the running example.

Regenerates: the constraint graph of Figure 5, the retiming function of
Figure 6 (``r(A)=r(B)=(0,0), r(C)=(0,-2), r(D)=(0,-3)``) and the retimed
edge weights of Figure 6a.  Times Algorithm 2 (one lexicographic
Bellman-Ford run).
"""

from repro.fusion import legal_fusion_retiming, llofra_constraint_graph
from repro.gallery import figure2_mldg
from repro.gallery.paper import figure2_expected_llofra_retiming
from repro.graph import is_fusion_legal
from repro.vectors import IVec

EXPECTED_WEIGHTS = {
    ("A", "B"): IVec(1, 1),
    ("B", "C"): IVec(0, 0),
    ("C", "D"): IVec(0, 0),
    ("A", "C"): IVec(0, 3),
    ("D", "A"): IVec(2, -2),
    ("C", "C"): IVec(1, 0),
}


def test_figure5_figure6_reproduction(benchmark, report):
    g = figure2_mldg()

    retiming = benchmark(legal_fusion_retiming, g)

    expected = figure2_expected_llofra_retiming()
    assert retiming == expected, "retiming differs from Figure 6"

    gr = retiming.apply(g)
    assert is_fusion_legal(gr)
    for (src, dst), want in EXPECTED_WEIGHTS.items():
        assert gr.delta(src, dst) == want, f"{src}->{dst}"

    cg = llofra_constraint_graph(g)
    report.table(
        "Figure 5: constraint graph of the running example",
        ["edge", "weight"],
        [
            (f"{'v0' if u == cg.source else u} -> {v}", str(w))
            for (u, v, w) in cg.edges
        ],
    )
    report.table(
        "Figure 6: LLOFRA retiming and retimed edge weights",
        ["item", "paper", "measured", "match"],
        [
            *(
                (f"r({n})", str(expected[n]), str(retiming[n]), "yes")
                for n in g.nodes
            ),
            *(
                (f"delta_Lr({s}->{d})", str(w), str(gr.delta(s, d)), "yes")
                for (s, d), w in EXPECTED_WEIGHTS.items()
            ),
        ],
    )
