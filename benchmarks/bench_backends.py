"""Infrastructure benchmark: interpreter vs compiled execution backends.

Not a paper experiment -- this measures the library's own two execution
engines on the running example so regressions in either are visible.  The
compiled numpy backend should beat the tree-walking interpreter by a wide
margin on row-vectorisable programs while remaining bit-identical (the
differential tests assert the latter; here we assert it once more on the
benchmarked configuration).
"""

import pytest

from repro.codegen import (
    ArrayStore,
    apply_fusion,
    compile_fused,
    compile_original,
    run_fused,
    run_original,
)
from repro.depend import extract_mldg
from repro.fusion import fuse
from repro.gallery.paper import figure2_code
from repro.loopir import parse_program

N, M = 48, 64


@pytest.fixture(scope="module")
def setup():
    nest = parse_program(figure2_code())
    g = extract_mldg(nest)
    res = fuse(g)
    fp = apply_fusion(nest, res.retiming, mldg=g)
    base = ArrayStore.for_program(nest, N, M, seed=0)
    return nest, fp, base


def test_interpreter_original(benchmark, setup):
    nest, _fp, base = setup
    benchmark(lambda: run_original(nest, N, M, store=base.copy()))


def test_compiled_original(benchmark, setup):
    nest, _fp, base = setup
    kernel = compile_original(nest)
    benchmark(lambda: kernel(base.copy(), N, M))


def test_interpreter_fused_serial(benchmark, setup):
    _nest, fp, base = setup
    benchmark(lambda: run_fused(fp, N, M, store=base.copy(), mode="serial"))


def test_compiled_fused(benchmark, setup):
    nest, fp, base = setup
    kernel = compile_fused(fp)
    # sanity: compiled result equals interpreted result on this exact config
    a = base.copy()
    kernel(a, N, M)
    b = run_fused(fp, N, M, store=base.copy(), mode="serial")
    assert a.equal(b)
    benchmark(lambda: kernel(base.copy(), N, M))
