"""E4 -- Figures 14-16: Algorithm 5 on the cyclic hyperplane example.

Regenerates: the Figure-15 retiming and retimed dependence sets, the
schedule vector ``s = (5, 1)`` and hyperplane ``h = (1, -5)`` of Section
4.4 / Figure 16.  Times Algorithm 5 (LLOFRA + schedule construction).
"""

from repro.fusion import hyperplane_parallel_fusion
from repro.gallery import figure14_mldg
from repro.gallery.paper import (
    figure14_expected_hyperplane,
    figure14_expected_retiming,
    figure14_expected_schedule,
)
from repro.vectors import IVec, is_strict_schedule_vector

EXPECTED_SETS = {
    ("A", "B"): {(0, 5)},
    ("B", "C"): {(0, 0), (0, 5)},
    ("C", "D"): {(0, 0), (0, 2)},
    ("D", "C"): {(0, 1)},
    ("D", "E"): {(0, 0)},
    ("E", "B"): {(0, 0), (1, 0)},
    ("B", "F"): {(0, 0)},
    ("F", "G"): {(1, -4)},
    ("B", "E"): {(1, 3)},
    ("A", "D"): {(0, 0), (1, 3)},
}


def test_figure15_figure16_reproduction(benchmark, report):
    g = figure14_mldg()

    hp = benchmark(hyperplane_parallel_fusion, g)

    assert hp.retiming == figure14_expected_retiming(), "Figure 15 retiming"
    assert hp.schedule == figure14_expected_schedule(), "s = (5,1)"
    assert hp.hyperplane == figure14_expected_hyperplane(), "h = (1,-5)"
    assert is_strict_schedule_vector(hp.schedule, hp.retimed_vectors)

    gr = hp.retiming.apply(g)
    for (src, dst), want in EXPECTED_SETS.items():
        assert gr.D(src, dst) == frozenset(IVec(v) for v in want), f"{src}->{dst}"

    expected = figure14_expected_retiming()
    report.table(
        "Figure 15: Algorithm-5 (LLOFRA) retiming",
        ["node", "paper r", "measured r", "match"],
        [(n, str(expected[n]), str(hp.retiming[n]), "yes") for n in g.nodes],
    )
    report.table(
        "Figure 15: retimed dependence-vector sets D_Lr",
        ["edge", "paper", "measured", "match"],
        [
            (
                f"{s}->{d}",
                str(sorted(want)),
                str(sorted(tuple(v) for v in gr.D(s, d))),
                "yes",
            )
            for (s, d), want in EXPECTED_SETS.items()
        ],
    )
    report.table(
        "Section 4.4 / Figure 16: wavefront schedule",
        ["item", "paper", "measured"],
        [
            ("schedule vector s", "(5, 1)", str(hp.schedule)),
            ("hyperplane h", "(1, -5)", str(hp.hyperplane)),
        ],
    )

    from repro.viz import format_hyperplane_grid

    report.text("\n== Figure 16 rendering ==\n" + format_hyperplane_grid(hp.schedule, rows=4, cols=8))
